//! The learned upper-level policy: a neural network mapping the mean-field
//! state `(ν_t, λ_t)` to decision-rule logits (Fig. 2).
//!
//! Observation encoding: the `B+1` probabilities of `ν_t` concatenated with
//! a one-hot encoding of the arrival level. Action decoding: the network's
//! `|Z|^d·d` outputs are treated as logits and row-softmax-normalized into
//! a [`DecisionRule`] ("manual normalization", §4 — the Dirichlet head the
//! authors tried performed worse).
//!
//! At evaluation time the policy is deterministic (the Gaussian
//! exploration noise used during PPO training is dropped and the mean
//! logits are used directly), matching how the paper deploys the trained
//! MF policy in finite systems (Algorithm 1).

use mflb_core::mdp::{encode_observation_into, ObservationBatch, UpperPolicy};
use mflb_core::{DecisionRule, StateDist};
use mflb_nn::{F32Mlp, F32Workspace, Mlp, TanhMode, Workspace};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Mutex;

// Canonical encoders live in `mflb_core::mdp` so the RL environment and the
// deployed policy can never drift apart; re-exported here for convenience.
pub use mflb_core::mdp::{action_dim, encode_observation, observation_dim};

/// How a [`NeuralUpperPolicy`] evaluates its network at decision time.
///
/// The default (`BitCompat` tanh, `f64` weights) reproduces every pinned
/// checkpoint and regression stream bit-for-bit. The other tiers trade
/// bit-identity for speed and are surfaced on the CLI as `--fast-math`
/// and `--precision f32`:
///
/// * [`TanhMode::Fast`] — rational-polynomial tanh, ~1e-7 absolute error;
/// * `f32_weights` — narrowed single-precision weights, halving weight
///   streaming; certified by the eval gate before serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferenceConfig {
    /// `tanh` evaluation mode for the policy network.
    pub tanh_mode: TanhMode,
    /// Run inference through a narrowed [`F32Mlp`] copy of the weights.
    pub f32_weights: bool,
}

impl InferenceConfig {
    /// True iff this config is the bit-compatible default tier.
    pub fn is_bit_compat(&self) -> bool {
        self.tanh_mode == TanhMode::BitCompat && !self.f32_weights
    }

    /// A short human label for reports: `f64`, `f64+fast-tanh`,
    /// `f32`, or `f32+fast-tanh`.
    pub fn label(&self) -> &'static str {
        match (self.f32_weights, self.tanh_mode) {
            (false, TanhMode::BitCompat) => "f64",
            (false, TanhMode::Fast) => "f64+fast-tanh",
            (true, TanhMode::BitCompat) => "f32",
            (true, TanhMode::Fast) => "f32+fast-tanh",
        }
    }
}

/// Reusable per-decision scratch: the encoded observation vector, the
/// network workspace driving the batch-1 `gemv` / batched gemm inference
/// paths, and the `f32`-tier scratch (workspace + widened logits).
#[derive(Debug, Default)]
struct DecideScratch {
    obs: Vec<f64>,
    ws: Workspace,
    ws32: F32Workspace,
    logits64: Vec<f64>,
}

/// A trained policy checkpoint: network weights plus the shape metadata
/// needed to rebuild the decision-rule decoding, and provenance fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCheckpoint {
    /// The policy network.
    pub net: Mlp,
    /// Number of queue states `|Z| = B+1`.
    pub num_states: usize,
    /// Number of sampled queues d.
    pub d: usize,
    /// Number of arrival levels `|Λ|`.
    pub num_levels: usize,
    /// Synchronization delay the policy was trained for.
    pub dt: f64,
    /// Free-form provenance (training steps, date, config hash …).
    pub meta: String,
}

/// The neural upper-level policy π̃.
#[derive(Debug)]
pub struct NeuralUpperPolicy {
    net: Mlp,
    /// States of the *observed* distribution (queue lengths: `B + 1`).
    obs_states: usize,
    /// States of the emitted decision rule. Equal to `obs_states` for
    /// homogeneous systems; `C·(B+1)` composite states for heterogeneous
    /// pools, whose engines observe lengths but route on `(length, class)`.
    rule_states: usize,
    d: usize,
    num_levels: usize,
    name: String,
    /// Narrowed single-precision copy of `net`, present iff the policy
    /// was configured with [`InferenceConfig::f32_weights`]; when set,
    /// both `decide` and `decide_batch` route through it so the
    /// sequential and batched paths always agree per tier.
    f32_net: Option<F32Mlp>,
    /// Pool of warmed-up [`DecideScratch`]es. `decide` takes `&self` and
    /// runs concurrently from parallel Monte-Carlo threads, so each call
    /// checks a scratch out of the pool (creating one on first use per
    /// concurrent caller) and returns it afterwards — steady-state
    /// decision epochs are allocation-free and the lock is held only for
    /// the pop/push, never across the network forward.
    scratch: Mutex<Vec<DecideScratch>>,
}

impl Clone for NeuralUpperPolicy {
    fn clone(&self) -> Self {
        Self {
            net: self.net.clone(),
            obs_states: self.obs_states,
            rule_states: self.rule_states,
            d: self.d,
            num_levels: self.num_levels,
            name: self.name.clone(),
            f32_net: self.f32_net.clone(),
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl NeuralUpperPolicy {
    /// Wraps a network; the network's input/output dims must match the
    /// encoding implied by `(num_states, d, num_levels)`.
    pub fn new(net: Mlp, num_states: usize, d: usize, num_levels: usize) -> Self {
        Self::with_rule_space(net, num_states, num_states, d, num_levels)
    }

    /// Wraps a network whose decision rule lives on a *different* state
    /// space than the observation — the heterogeneous-pool case, where the
    /// policy observes the length distribution (`obs_states = B + 1`) but
    /// must emit a rule over composite `(length, class)` states
    /// (`rule_states = C·(B+1)`, see [`crate::composite_index`]).
    pub fn with_rule_space(
        net: Mlp,
        obs_states: usize,
        rule_states: usize,
        d: usize,
        num_levels: usize,
    ) -> Self {
        assert_eq!(
            net.input_dim(),
            observation_dim(obs_states, num_levels),
            "network input dim mismatch"
        );
        assert_eq!(net.output_dim(), action_dim(rule_states, d), "network output dim mismatch");
        Self {
            net,
            obs_states,
            rule_states,
            d,
            num_levels,
            name: "MF (learned)".into(),
            f32_net: None,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Reconfigures the inference tier (builder form): sets the network's
    /// [`TanhMode`] and, when `cfg.f32_weights` is set, narrows the
    /// weights into a single-precision copy that both [`UpperPolicy::decide`]
    /// and [`UpperPolicy::decide_batch`] route through.
    ///
    /// The default [`InferenceConfig`] restores the bit-compatible tier.
    pub fn with_inference(mut self, cfg: InferenceConfig) -> Self {
        self.net.set_tanh_mode(cfg.tanh_mode);
        self.f32_net = if cfg.f32_weights { Some(self.net.to_f32()) } else { None };
        self
    }

    /// The currently configured inference tier.
    pub fn inference(&self) -> InferenceConfig {
        InferenceConfig { tanh_mode: self.net.tanh_mode(), f32_weights: self.f32_net.is_some() }
    }

    /// Builds from a checkpoint.
    pub fn from_checkpoint(ckpt: PolicyCheckpoint) -> Self {
        Self::new(ckpt.net, ckpt.num_states, ckpt.d, ckpt.num_levels)
    }

    /// Loads a checkpoint from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        let ckpt: PolicyCheckpoint =
            serde_json::from_str(&text).map_err(|e| format!("parse checkpoint: {e}"))?;
        Ok(Self::from_checkpoint(ckpt))
    }

    /// Saves the policy as a checkpoint JSON file.
    ///
    /// This legacy format cannot represent composite-rule policies; those
    /// travel in `mflb_rl`'s versioned `TrainingCheckpoint` instead.
    pub fn save(
        &self,
        path: impl AsRef<Path>,
        dt: f64,
        meta: impl Into<String>,
    ) -> Result<(), String> {
        if self.rule_states != self.obs_states {
            return Err("legacy PolicyCheckpoint cannot hold a composite-rule policy; \
                 save the versioned training checkpoint instead"
                .into());
        }
        let ckpt = PolicyCheckpoint {
            net: self.net.clone(),
            num_states: self.obs_states,
            d: self.d,
            num_levels: self.num_levels,
            dt,
            meta: meta.into(),
        };
        let text = serde_json::to_string(&ckpt).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path.as_ref(), text)
            .map_err(|e| format!("write {}: {e}", path.as_ref().display()))
    }

    /// Access to the wrapped network (e.g. for continued training).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Renames the policy (harness labels).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl UpperPolicy for NeuralUpperPolicy {
    fn decide(&self, dist: &StateDist, lambda_idx: usize, _lambda: f64) -> DecisionRule {
        debug_assert_eq!(dist.num_states(), self.obs_states, "observed distribution shape");
        // Check a scratch out of the pool: the observation encode and the
        // network forward then run allocation-free on warmed buffers
        // (bit-identical to the allocating encode + `forward_one` path).
        let mut scratch =
            self.scratch.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        encode_observation_into(dist, lambda_idx, self.num_levels, &mut scratch.obs);
        let rule = match &self.f32_net {
            None => {
                let logits = self.net.forward_one_into(&scratch.obs, &mut scratch.ws);
                DecisionRule::from_logits(self.rule_states, self.d, logits)
            }
            Some(f32net) => {
                let DecideScratch { obs, ws32, logits64, .. } = &mut scratch;
                let logits32 = f32net.forward_one_into(obs, ws32);
                logits64.clear();
                logits64.extend(logits32.iter().map(|&v| v as f64));
                DecisionRule::from_logits(self.rule_states, self.d, logits64)
            }
        };
        self.scratch.lock().expect("scratch pool poisoned").push(scratch);
        rule
    }

    /// Batched override: one gemm per layer over the whole stacked
    /// observation batch instead of `batch.len()` gemvs.
    ///
    /// In the bit-compatible tier this is **bit-identical** to looping
    /// [`UpperPolicy::decide`] — the gemm kernels accumulate each output
    /// row in exactly the per-row gemv order — so callers may batch
    /// freely without perturbing seed-pinned runs (property-tested). The
    /// `f32` and fast-tanh tiers agree with their own sequential `decide`
    /// path the same way.
    fn decide_batch(&self, batch: &ObservationBatch, out: &mut [DecisionRule]) {
        assert_eq!(out.len(), batch.len(), "decide_batch output slots");
        if batch.is_empty() {
            return;
        }
        debug_assert_eq!(
            batch.obs_dim(),
            observation_dim(self.obs_states, self.num_levels),
            "observation batch shape"
        );
        let mut scratch =
            self.scratch.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        match &self.f32_net {
            None => {
                let output =
                    self.net.forward_rows_into(batch.len(), batch.as_slice(), &mut scratch.ws);
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = DecisionRule::from_logits(self.rule_states, self.d, output.row(i));
                }
            }
            Some(f32net) => {
                let DecideScratch { ws32, logits64, .. } = &mut scratch;
                let logits32 = f32net.forward_rows_into(batch.len(), batch.as_slice(), ws32);
                let width = f32net.output_dim();
                for (i, slot) in out.iter_mut().enumerate() {
                    logits64.clear();
                    logits64.extend(logits32[i * width..(i + 1) * width].iter().map(|&v| v as f64));
                    *slot = DecisionRule::from_logits(self.rule_states, self.d, logits64);
                }
            }
        }
        self.scratch.lock().expect("scratch pool poisoned").push(scratch);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_nn::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_policy() -> NeuralUpperPolicy {
        let mut rng = StdRng::seed_from_u64(1);
        let obs = observation_dim(6, 2);
        let act = action_dim(6, 2);
        let net = Mlp::new(&[obs, 16, act], Activation::Tanh, &mut rng);
        NeuralUpperPolicy::new(net, 6, 2, 2)
    }

    #[test]
    fn observation_encoding_layout() {
        let dist = StateDist::new(vec![0.5, 0.2, 0.1, 0.1, 0.05, 0.05]);
        let obs = encode_observation(&dist, 1, 2);
        assert_eq!(obs.len(), 8);
        assert_eq!(&obs[..6], dist.as_slice());
        assert_eq!(&obs[6..], &[0.0, 1.0]);
    }

    #[test]
    fn decide_returns_valid_rule_and_is_deterministic() {
        let p = tiny_policy();
        let dist = StateDist::all_empty(5);
        let a = p.decide(&dist, 0, 0.9);
        let b = p.decide(&dist, 0, 0.9);
        assert!(a.max_abs_diff(&b) < 1e-15);
        for row in 0..a.num_rows() {
            let mass: f64 = a.row(row).iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn different_lambda_levels_can_change_the_rule() {
        let p = tiny_policy();
        let dist = StateDist::uniform(5);
        let a = p.decide(&dist, 0, 0.9);
        let b = p.decide(&dist, 1, 0.6);
        // A random net almost surely produces different logits for
        // different one-hot inputs.
        assert!(a.max_abs_diff(&b) > 1e-9);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_decisions() {
        let p = tiny_policy();
        let dir = std::env::temp_dir().join("mflb_test_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        p.save(&path, 5.0, "unit-test").unwrap();
        let q = NeuralUpperPolicy::load(&path).unwrap();
        let dist = StateDist::new(vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.05]);
        let a = p.decide(&dist, 1, 0.6);
        let b = q.decide(&dist, 1, 0.6);
        assert!(a.max_abs_diff(&b) < 1e-15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decide_batch_bit_identical_to_sequential() {
        let p = tiny_policy();
        let dists = [
            StateDist::new(vec![0.5, 0.2, 0.1, 0.1, 0.05, 0.05]),
            StateDist::all_empty(5),
            StateDist::uniform(5),
        ];
        let mut batch = ObservationBatch::new(6, 2);
        for (i, d) in dists.iter().enumerate() {
            batch.push(d.clone(), i % 2, 0.9);
        }
        let mut out = vec![DecisionRule::uniform(1, 1); 3];
        p.decide_batch(&batch, &mut out);
        for (i, d) in dists.iter().enumerate() {
            let seq = p.decide(d, i % 2, 0.9);
            assert_eq!(
                seq.as_slice(),
                out[i].as_slice(),
                "batched row {i} diverged from sequential decide"
            );
        }
        // Reused (cleared) batch stays correct.
        batch.clear();
        batch.push(dists[2].clone(), 1, 0.6);
        let mut one = vec![DecisionRule::uniform(1, 1)];
        p.decide_batch(&batch, &mut one);
        assert_eq!(one[0].as_slice(), p.decide(&dists[2], 1, 0.6).as_slice());
    }

    #[test]
    fn inference_tiers_agree_between_decide_and_decide_batch() {
        let dist = StateDist::new(vec![0.4, 0.3, 0.1, 0.1, 0.05, 0.05]);
        for cfg in [
            InferenceConfig { tanh_mode: TanhMode::Fast, f32_weights: false },
            InferenceConfig { tanh_mode: TanhMode::BitCompat, f32_weights: true },
            InferenceConfig { tanh_mode: TanhMode::Fast, f32_weights: true },
        ] {
            let p = tiny_policy().with_inference(cfg);
            assert_eq!(p.inference(), cfg);
            let mut batch = ObservationBatch::new(6, 2);
            batch.push(dist.clone(), 1, 0.6);
            let mut out = vec![DecisionRule::uniform(1, 1)];
            p.decide_batch(&batch, &mut out);
            let seq = p.decide(&dist, 1, 0.6);
            assert_eq!(seq.as_slice(), out[0].as_slice(), "tier {} diverged", cfg.label());
        }
    }

    #[test]
    fn f32_tier_close_to_f64_tier() {
        let p64 = tiny_policy();
        let p32 = tiny_policy()
            .with_inference(InferenceConfig { tanh_mode: TanhMode::BitCompat, f32_weights: true });
        let dist = StateDist::uniform(5);
        let a = p64.decide(&dist, 0, 0.9);
        let b = p32.decide(&dist, 0, 0.9);
        assert!(a.max_abs_diff(&b) < 1e-4, "f32 tier drifted: {}", a.max_abs_diff(&b));
    }

    #[test]
    #[should_panic(expected = "output dim mismatch")]
    fn rejects_wrong_network_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(&[8, 4, 10], Activation::Tanh, &mut rng);
        NeuralUpperPolicy::new(net, 6, 2, 2);
    }
}

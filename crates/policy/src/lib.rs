//! Load-balancing policies for the delayed-information system.
//!
//! * [`rules`] — classical decision rules: JSQ(d) (Eq. 34), RND (Eq. 35),
//!   SED(d) over composite heterogeneous states;
//! * [`softmin`] — the softmin(β) family interpolating RND ↔ JSQ with a
//!   deterministic β optimizer in the mean-field MDP (ablation + learned-
//!   policy stand-in);
//! * [`upper`] — the neural upper-level policy π̃ (Fig. 2) with JSON
//!   checkpointing.
//!
//! All policies implement [`mflb_core::mdp::UpperPolicy`] and therefore run
//! unchanged in the mean-field MDP *and* in the finite `N,M` simulator
//! (`mflb-sim`), exactly as in the paper's evaluation.
//!
//! ### Locality
//!
//! Every rule here is a table over the *observed states of the `d`
//! sampled queues*, not over queue identities — so the same JSQ(d), RND
//! and softmin(β) tables are automatically **neighborhood-restricted**
//! when deployed on a graph-constrained engine
//! (`mflb_sim::GraphEngine`): the engine draws the `d` samples from each
//! dispatcher's closed neighborhood, and the rule only ever ranks what
//! was sampled. JSQ(d) on a ring is "join the shortest *observed
//! neighbor*", with the usual stale-information caveats on top. See
//! [`rules`] for details.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod rules;
pub mod softmin;
pub mod upper;

pub use rules::{
    composite_decode, composite_index, jsq_rule, lift_to_composite, rnd_rule, rule_l1_weighted,
    sed_rule,
};
pub use softmin::{optimize_beta, softmin_rule, BetaSearchResult, SoftminPolicy};
pub use upper::{
    action_dim, encode_observation, observation_dim, InferenceConfig, NeuralUpperPolicy,
    PolicyCheckpoint,
};
// The inference-tier switch travels with [`InferenceConfig`]; re-exported
// so CLI layers need not depend on `mflb-nn` directly.
pub use mflb_nn::TanhMode;

//! Classical load-balancing decision rules.
//!
//! All rules are expressed as [`DecisionRule`] tables over the observed
//! (stale) states of the `d` sampled queues, exactly as applied by the
//! paper's finite-system clients and mean-field baselines:
//!
//! * [`jsq_rule`] — Join-the-Shortest-Queue over the sample (MF-JSQ(d),
//!   Eq. 34): route to an argmin of the observed queue lengths, ties split
//!   uniformly,
//! * [`rnd_rule`] — uniform random choice among the `d` samples (MF-RND,
//!   Eq. 35),
//! * [`sed_rule`] — Shortest-Expected-Delay for heterogeneous pools over
//!   *composite* states `(queue length, rate class)`; with a single class
//!   it coincides with JSQ (tested).
//!
//! ### Neighborhood restriction
//!
//! Rules rank **sampled observations**, never queue identities, so no
//! separate "local" variants exist: deployed on a locality-constrained
//! engine (`mflb_sim::GraphEngine`, where samples come from each
//! dispatcher's closed neighborhood) the same tables become the
//! neighborhood-restricted baselines JSQ(d)/RND/softmin of the sparse
//! mean-field load-balancing literature (arXiv:2312.12973). The
//! restriction is enforced by the engine's sampling — property-tested in
//! `mflb-sim` ("routing never leaves the neighborhood").

use mflb_core::{DecisionRule, StateDist};

/// MF-JSQ(d): probability `1/|argmin|` on each observed minimum (Eq. 34).
pub fn jsq_rule(num_states: usize, d: usize) -> DecisionRule {
    DecisionRule::from_fn(num_states, d, |tuple| {
        let min = *tuple.iter().min().expect("d >= 1");
        let n_min = tuple.iter().filter(|&&z| z == min).count() as f64;
        tuple.iter().map(|&z| if z == min { 1.0 / n_min } else { 0.0 }).collect()
    })
}

/// MF-RND: uniform over the `d` sampled queues (Eq. 35).
pub fn rnd_rule(num_states: usize, d: usize) -> DecisionRule {
    DecisionRule::uniform(num_states, d)
}

/// Encodes a composite heterogeneous state `(queue length z, rate class c)`
/// into a single index `c·(B+1) + z` for rule tables over composite states.
pub fn composite_index(z: usize, class: usize, num_queue_states: usize) -> usize {
    class * num_queue_states + z
}

/// Decodes a composite index back into `(queue length, rate class)`.
pub fn composite_decode(idx: usize, num_queue_states: usize) -> (usize, usize) {
    (idx % num_queue_states, idx / num_queue_states)
}

/// Lifts a length-state rule to the composite `(length, class)` state space
/// by ignoring the class: the lifted rule looks only at the queue lengths
/// `idx % num_queue_states` of the sampled tuple.
///
/// This is how rate-blind baselines (JSQ(d), RND, softmin) are deployed on
/// heterogeneous pools, whose engines and mean-field model expect rules
/// over composite states (see [`composite_index`]).
pub fn lift_to_composite(
    rule: &DecisionRule,
    num_queue_states: usize,
    num_classes: usize,
) -> DecisionRule {
    assert!(num_classes >= 1);
    assert_eq!(rule.num_states(), num_queue_states, "rule must be over plain length states");
    let d = rule.d();
    DecisionRule::from_fn(num_queue_states * num_classes, d, |tuple| {
        let raw: Vec<usize> = tuple.iter().map(|&idx| idx % num_queue_states).collect();
        (0..d).map(|u| rule.prob(&raw, u)).collect()
    })
}

/// SED(d) for heterogeneous pools: route to the sampled queue minimizing
/// the expected delay `(z + 1)/α_class`, ties split uniformly.
///
/// The rule operates on composite states (see [`composite_index`]); the
/// table therefore has `(num_queue_states · class_rates.len())^d` rows.
pub fn sed_rule(num_queue_states: usize, d: usize, class_rates: &[f64]) -> DecisionRule {
    assert!(!class_rates.is_empty());
    assert!(class_rates.iter().all(|&r| r > 0.0));
    let composite_states = num_queue_states * class_rates.len();
    DecisionRule::from_fn(composite_states, d, |tuple| {
        let delays: Vec<f64> = tuple
            .iter()
            .map(|&idx| {
                let (z, c) = composite_decode(idx, num_queue_states);
                (z as f64 + 1.0) / class_rates[c]
            })
            .collect();
        let min = delays.iter().copied().fold(f64::INFINITY, f64::min);
        let n_min = delays.iter().filter(|&&x| (x - min).abs() < 1e-12).count() as f64;
        delays.iter().map(|&x| if (x - min).abs() < 1e-12 { 1.0 / n_min } else { 0.0 }).collect()
    })
}

/// Expected ℓ₁ distance between two decision rules' routing rows when the
/// `d` observed states are drawn i.i.d. from `ν`:
/// `Σ_{z̄} ν^⊗d(z̄) · Σ_u |a(u|z̄) − b(u|z̄)|`.
///
/// This is the natural "how differently would these rules route *right
/// now*" metric: observation tuples the current mean field never produces
/// contribute nothing. Used by the distillation pass to project a neural
/// rule onto the nearest library member per lattice vertex.
pub fn rule_l1_weighted(a: &DecisionRule, b: &DecisionRule, nu: &StateDist) -> f64 {
    assert_eq!(a.num_states(), b.num_states(), "rules must share the state space");
    assert_eq!(a.d(), b.d(), "rules must share d");
    assert_eq!(nu.num_states(), a.num_states(), "ν must match the rules' state space");
    let d = a.d();
    let mut total = 0.0;
    for row in 0..a.num_rows() {
        let tuple = a.decode_index(row);
        let w: f64 = tuple.iter().map(|&z| nu.prob(z)).product();
        if w == 0.0 {
            continue;
        }
        let mut dist = 0.0;
        for u in 0..d {
            dist += (a.prob_by_row(row, u) - b.prob_by_row(row, u)).abs();
        }
        total += w * dist;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsq_routes_to_unique_minimum() {
        let r = jsq_rule(6, 2);
        assert_eq!(r.prob(&[0, 5], 0), 1.0);
        assert_eq!(r.prob(&[5, 0], 1), 1.0);
        assert_eq!(r.prob(&[3, 4], 0), 1.0);
    }

    #[test]
    fn jsq_splits_ties_uniformly() {
        let r = jsq_rule(6, 3);
        // Two minima among three samples.
        assert!((r.prob(&[2, 2, 5], 0) - 0.5).abs() < 1e-12);
        assert!((r.prob(&[2, 2, 5], 1) - 0.5).abs() < 1e-12);
        assert_eq!(r.prob(&[2, 2, 5], 2), 0.0);
        // Full tie.
        for u in 0..3 {
            assert!((r.prob(&[1, 1, 1], u) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rnd_is_uniform_everywhere() {
        let r = rnd_rule(6, 2);
        for row in 0..r.num_rows() {
            assert!((r.prob_by_row(row, 0) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn composite_roundtrip() {
        let zs = 6;
        for c in 0..3 {
            for z in 0..zs {
                let idx = composite_index(z, c, zs);
                assert_eq!(composite_decode(idx, zs), (z, c));
            }
        }
    }

    #[test]
    fn lifted_rule_ignores_class() {
        let zs = 4;
        let lifted = lift_to_composite(&jsq_rule(zs, 2), zs, 3);
        assert_eq!(lifted.num_states(), 12);
        // (z=1, class 2) vs (z=3, class 0): lengths decide, classes don't.
        let a = composite_index(1, 2, zs);
        let b = composite_index(3, 0, zs);
        assert_eq!(lifted.prob(&[a, b], 0), 1.0);
        // Equal lengths in different classes tie.
        let c = composite_index(2, 0, zs);
        let e = composite_index(2, 1, zs);
        assert!((lifted.prob(&[c, e], 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lift_single_class_is_identity() {
        let jsq = jsq_rule(5, 2);
        assert!(lift_to_composite(&jsq, 5, 1).max_abs_diff(&jsq) < 1e-15);
    }

    #[test]
    fn sed_single_class_equals_jsq() {
        let sed = sed_rule(6, 2, &[1.0]);
        let jsq = jsq_rule(6, 2);
        assert!(sed.max_abs_diff(&jsq) < 1e-12);
    }

    #[test]
    fn sed_prefers_fast_server_with_longer_queue() {
        // Classes: 0 fast (α = 2), 1 slow (α = 0.5).
        let zs = 6;
        let sed = sed_rule(zs, 2, &[2.0, 0.5]);
        // Fast server with 2 jobs: delay 1.5; slow empty server: delay 2.
        let fast2 = composite_index(2, 0, zs);
        let slow0 = composite_index(0, 1, zs);
        assert_eq!(sed.prob(&[fast2, slow0], 0), 1.0);
        // JSQ on raw lengths would pick the empty one — opposite choice.
        let jsq = jsq_rule(zs, 2);
        assert_eq!(jsq.prob(&[2, 0], 1), 1.0);
    }

    #[test]
    fn rule_l1_weighted_is_zero_on_identical_rules_and_bounded() {
        let nu = StateDist::new(vec![0.5, 0.3, 0.2, 0.0]);
        let jsq = jsq_rule(4, 2);
        let rnd = rnd_rule(4, 2);
        assert_eq!(rule_l1_weighted(&jsq, &jsq, &nu), 0.0);
        let d = rule_l1_weighted(&jsq, &rnd, &nu);
        assert!(d > 0.0 && d <= 2.0, "ℓ₁ between distributions is in [0, 2], got {d}");
        // Symmetry.
        assert!((d - rule_l1_weighted(&rnd, &jsq, &nu)).abs() < 1e-15);
    }

    #[test]
    fn rule_l1_weighted_ignores_unreachable_tuples() {
        // ν concentrated on state 0: only the (0,0) tuple matters, where
        // JSQ ties (0.5/0.5) and RND is 0.5/0.5 — so the distance is 0
        // even though the rules differ elsewhere.
        let nu = StateDist::delta(3, 0);
        let d = rule_l1_weighted(&jsq_rule(4, 2), &rnd_rule(4, 2), &nu);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn sed_ties_split() {
        let zs = 4;
        let sed = sed_rule(zs, 2, &[1.0, 2.0]);
        // (z=1, fast class 0): delay 2; (z=3, class 1): delay 2 — tie.
        let a = composite_index(1, 0, zs);
        let b = composite_index(3, 1, zs);
        assert!((sed.prob(&[a, b], 0) - 0.5).abs() < 1e-12);
    }
}

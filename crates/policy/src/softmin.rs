//! The softmin(β) policy family — an interpretable bridge between RND and
//! JSQ, plus a deterministic β optimizer in the mean-field MDP.
//!
//! `h_β(u | z̄) ∝ exp(−β·z̄_u)` recovers MF-RND at `β = 0` and MF-JSQ(d) as
//! `β → ∞`. Because the mean-field MDP is deterministic conditioned on the
//! arrival sequence, the episode return is a smooth deterministic function
//! of β over a fixed batch of arrival sequences, so a 1-D search yields the
//! optimal interpolation for every synchronization delay Δt. The family
//! serves three roles:
//!
//! 1. the ablation asking "is the learned gain just JSQ↔RND interpolation,
//!    or does feedback on ν_t matter?",
//! 2. a strong stand-in when no trained PPO checkpoint is available,
//! 3. a sanity anchor: β* must decrease as Δt grows (stale information
//!    makes chasing short queues counterproductive), mirroring the paper's
//!    qualitative finding.

use mflb_core::mdp::{FixedRulePolicy, MeanFieldMdp, UpperPolicy};
use mflb_core::theory::sample_lambda_sequence;
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Builds the softmin rule `h_β(u|z̄) ∝ exp(−β·z̄_u)`.
pub fn softmin_rule(num_states: usize, d: usize, beta: f64) -> DecisionRule {
    assert!(beta >= 0.0 && beta.is_finite());
    DecisionRule::from_fn(num_states, d, |tuple| {
        let min = *tuple.iter().min().expect("d >= 1") as f64;
        let weights: Vec<f64> = tuple.iter().map(|&z| (-beta * (z as f64 - min)).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    })
}

/// An upper-level policy applying a fixed softmin(β) rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftminPolicy {
    /// Inverse-temperature parameter.
    pub beta: f64,
    num_states: usize,
    d: usize,
    #[serde(skip)]
    cached: Option<DecisionRule>,
    name: String,
}

impl SoftminPolicy {
    /// Creates the policy for a state space of size `num_states` and `d`
    /// samples.
    pub fn new(num_states: usize, d: usize, beta: f64) -> Self {
        Self {
            beta,
            num_states,
            d,
            cached: Some(softmin_rule(num_states, d, beta)),
            name: format!("MF-SOFT(beta={beta:.3})"),
        }
    }
}

impl UpperPolicy for SoftminPolicy {
    fn decide(&self, _dist: &StateDist, _lambda_idx: usize, _lambda: f64) -> DecisionRule {
        match &self.cached {
            Some(rule) => rule.clone(),
            None => softmin_rule(self.num_states, self.d, self.beta),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Result of a β search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BetaSearchResult {
    /// Optimal inverse temperature found.
    pub beta: f64,
    /// Mean episode return at the optimum (negative drops).
    pub value: f64,
    /// The `(β, value)` evaluations along the way (for ablation plots).
    pub trace: Vec<(f64, f64)>,
}

/// Deterministically optimizes β for a configuration by common-random-number
/// evaluation over `episodes` pre-sampled arrival sequences of length
/// `horizon`, using a coarse log-spaced grid followed by golden-section
/// refinement.
pub fn optimize_beta(
    config: &SystemConfig,
    horizon: usize,
    episodes: usize,
    seed: u64,
) -> BetaSearchResult {
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let seqs: Vec<Vec<usize>> =
        (0..episodes).map(|_| sample_lambda_sequence(config, horizon, &mut rng)).collect();
    let zs = config.num_states();
    let d = config.d;

    let eval = |beta: f64| -> f64 {
        let policy = FixedRulePolicy::new(softmin_rule(zs, d, beta), "softmin");
        let total: f64 =
            seqs.iter().map(|seq| mdp.rollout_conditioned(&policy, seq).total_return).sum();
        total / seqs.len() as f64
    };

    let mut trace = Vec::new();
    // Coarse grid: β = 0 plus log-spaced values up to 64 (effectively JSQ
    // for B = 5 since exp(-64) ≈ 0).
    let mut best_beta = 0.0;
    let mut best_value = eval(0.0);
    trace.push((0.0, best_value));
    let grid = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    for &b in &grid {
        let v = eval(b);
        trace.push((b, v));
        if v > best_value {
            best_value = v;
            best_beta = b;
        }
    }

    // Golden-section refinement around the best grid point.
    let lo = (best_beta / 2.0).max(0.0);
    let hi = if best_beta == 0.0 { 0.25 } else { best_beta * 2.0 };
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut dd = a + phi * (b - a);
    let mut fc = eval(c);
    let mut fd = eval(dd);
    for _ in 0..20 {
        if fc > fd {
            b = dd;
            dd = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = eval(c);
            trace.push((c, fc));
        } else {
            a = c;
            c = dd;
            fc = fd;
            dd = a + phi * (b - a);
            fd = eval(dd);
            trace.push((dd, fd));
        }
        if (b - a).abs() < 1e-3 {
            break;
        }
    }
    let refined = 0.5 * (a + b);
    let refined_value = eval(refined);
    if refined_value > best_value {
        best_value = refined_value;
        best_beta = refined;
    }
    trace.push((refined, refined_value));

    BetaSearchResult { beta: best_beta, value: best_value, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{jsq_rule, rnd_rule};

    #[test]
    fn beta_zero_is_rnd() {
        let soft = softmin_rule(6, 2, 0.0);
        assert!(soft.max_abs_diff(&rnd_rule(6, 2)) < 1e-12);
    }

    #[test]
    fn beta_infinity_limit_is_jsq() {
        let soft = softmin_rule(6, 2, 200.0);
        assert!(soft.max_abs_diff(&jsq_rule(6, 2)) < 1e-12);
    }

    #[test]
    fn softmin_rows_are_distributions_and_monotone_in_beta() {
        for &beta in &[0.0, 0.5, 2.0, 8.0] {
            let r = softmin_rule(6, 2, beta);
            for row in 0..r.num_rows() {
                let mass: f64 = r.row(row).iter().sum();
                assert!((mass - 1.0).abs() < 1e-12);
            }
        }
        // Larger β concentrates more on the shorter queue.
        let p1 = softmin_rule(6, 2, 1.0).prob(&[0, 3], 0);
        let p2 = softmin_rule(6, 2, 4.0).prob(&[0, 3], 0);
        assert!(p2 > p1 && p1 > 0.5);
    }

    #[test]
    fn optimize_beta_runs_and_finds_interior_or_boundary_optimum() {
        // Cheap smoke configuration: short horizon, few sequences.
        let cfg = SystemConfig::paper().with_dt(5.0);
        let res = optimize_beta(&cfg, 20, 3, 42);
        assert!(res.beta >= 0.0);
        assert!(res.value <= 0.0);
        assert!(res.trace.len() > 10);
        // Optimum must be at least as good as both endpoints of the family.
        let anchors: Vec<f64> =
            res.trace.iter().filter(|(b, _)| *b == 0.0 || *b == 64.0).map(|(_, v)| *v).collect();
        for v in anchors {
            assert!(res.value >= v - 1e-9);
        }
    }
}

//! Small dense linear algebra for continuous-time Markov chain (CTMC)
//! transient analysis.
//!
//! This crate provides exactly the numerical kernels needed by the
//! mean-field load-balancing model of Tahir, Cui & Koeppl (ICPP '22):
//!
//! * [`Mat`] — a dense row-major `f64` matrix with the usual arithmetic,
//! * [`lu::Lu`] — LU decomposition with partial pivoting (used by the Padé
//!   matrix exponential),
//! * [`expm::expm`] — scaling-and-squaring matrix exponential with Padé
//!   approximants (Higham 2005 degree selection),
//! * [`uniformization`] — the action of `exp(Q·t)` on a distribution for
//!   conservative generators `Q`, with rigorous truncation control,
//! * [`stats`] — scalar statistics (mean, variance, confidence intervals,
//!   chi-square goodness-of-fit) used by the experiment harness and the
//!   sampler test-suites.
//!
//! The matrices arising in the model are tiny ((B+2)×(B+2) with B ≈ 5), so
//! the implementations favour clarity and numerical robustness over
//! asymptotic tricks; everything is allocation-conscious enough to sit in
//! the inner loop of the simulator regardless.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod expm;
pub mod lu;
pub mod matrix;
pub mod stationary;
pub mod stats;
pub mod uniformization;

pub use expm::{expm, expm_apply};
pub use lu::Lu;
pub use matrix::Mat;
pub use stationary::{ctmc_stationary, dtmc_stationary, StationaryError};
pub use uniformization::{transient_distribution, UniformizationError};

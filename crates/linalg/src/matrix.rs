//! Dense row-major `f64` matrices.
//!
//! [`Mat`] is deliberately minimal: the mean-field model only ever
//! manipulates `(B+2)×(B+2)` generators (B ≈ 5–20), so we need correct and
//! readable kernels, not BLAS. All operations are bounds-checked in debug
//! builds and iterate row-major for cache friendliness.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Scales every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f64) -> Mat {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// Straightforward ikj-ordered triple loop: with row-major storage this
    /// streams both `self`'s row and `rhs`'s rows sequentially, which is the
    /// cache-friendly ordering for small/medium dense matrices.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bkj;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v` (treating `v` as a column vector).
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum()).collect()
    }

    /// Row-vector–matrix product `v * self`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &r) in out.iter_mut().zip(row.iter()) {
                *o += vi * r;
            }
        }
        out
    }

    /// The induced 1-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best: f64 = 0.0;
        for j in 0..self.cols {
            let mut s = 0.0;
            for i in 0..self.rows {
                s += self[(i, j)].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// The induced infinity-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        self.data
            .chunks_exact(self.cols.max(1))
            .map(|row| row.iter().map(|v| v.abs()).sum())
            .fold(0.0f64, f64::max)
    }

    /// The Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
    }

    /// Adds `s` to every diagonal entry in place.
    pub fn add_diag_mut(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// `true` iff all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Mat> for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a + b).collect();
        Mat::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Mat> for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a - b).collect();
        Mat::from_vec(self.rows, self.cols, data)
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl Mul<&Mat> for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matvec_and_vecmat_agree_with_transpose() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[0.5, 3.0], &[2.0, 2.0]]);
        let v = [1.0, 2.0, -1.0];
        let left = a.vecmat(&v);
        let right = a.transpose().matvec(&v);
        for (l, r) in left.iter().zip(right.iter()) {
            assert!((l - r).abs() < 1e-14);
        }
    }

    #[test]
    fn norms_on_simple_matrix() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(a.norm_one(), 6.0); // |{-2,4}| column
        assert_eq!(a.norm_inf(), 7.0); // |-3| + |4|
        assert!((a.norm_fro() - (30.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let c = &(&a + &b) - &b;
        assert!(c.max_abs_diff(&a) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn serde_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Mat = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

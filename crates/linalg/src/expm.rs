//! Matrix exponential via scaling and squaring with Padé approximants.
//!
//! This is the workhorse behind the paper's *exact discretization*
//! (Eq. 27–28): one decision epoch of the per-queue continuous-time Markov
//! chain is advanced by `exp(Q̄·Δt)` where `Q̄` is the extended rate matrix
//! that simultaneously evolves the queue-state distribution and accumulates
//! the expected number of dropped packets.
//!
//! The implementation follows Higham, *"The Scaling and Squaring Method for
//! the Matrix Exponential Revisited"* (SIAM J. Matrix Anal. Appl., 2005):
//! pick the smallest Padé degree `m ∈ {3, 5, 7, 9, 13}` whose accuracy
//! bound `θ_m` covers `‖A‖₁`; if even `θ₁₃` is exceeded, scale `A` by
//! `2^-s` and square the result `s` times.

use crate::lu::Lu;
use crate::matrix::Mat;

/// Padé coefficient table for degree 3.
const B3: [f64; 4] = [120.0, 60.0, 12.0, 1.0];
/// Padé coefficient table for degree 5.
const B5: [f64; 6] = [30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0];
/// Padé coefficient table for degree 7.
const B7: [f64; 8] =
    [17_297_280.0, 8_648_640.0, 1_995_840.0, 277_200.0, 25_200.0, 1512.0, 56.0, 1.0];
/// Padé coefficient table for degree 9.
const B9: [f64; 10] = [
    17_643_225_600.0,
    8_821_612_800.0,
    2_075_673_600.0,
    302_702_400.0,
    30_270_240.0,
    2_162_160.0,
    110_880.0,
    3960.0,
    90.0,
    1.0,
];
/// Padé coefficient table for degree 13.
const B13: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// Accuracy thresholds `θ_m` from Higham (2005), Table 2.3 (double
/// precision).
const THETA3: f64 = 1.495_585_217_958_292e-2;
const THETA5: f64 = 2.539_398_330_063_23e-1;
const THETA7: f64 = 9.504_178_996_162_932e-1;
const THETA9: f64 = 2.097_847_961_257_068;
const THETA13: f64 = 5.371_920_351_148_152;

/// Computes the matrix exponential `exp(A)` of a square matrix.
///
/// # Panics
/// Panics if `A` is not square or contains non-finite entries.
pub fn expm(a: &Mat) -> Mat {
    assert!(a.is_square(), "expm requires a square matrix");
    assert!(a.is_finite(), "expm requires finite entries");
    let norm = a.norm_one();

    if norm <= THETA3 {
        return pade(a, &B3);
    }
    if norm <= THETA5 {
        return pade(a, &B5);
    }
    if norm <= THETA7 {
        return pade(a, &B7);
    }
    if norm <= THETA9 {
        return pade(a, &B9);
    }
    // Scaling and squaring with degree-13 Padé.
    let mut s = 0u32;
    let mut scaled_norm = norm;
    while scaled_norm > THETA13 {
        scaled_norm *= 0.5;
        s += 1;
    }
    let scaled = a.scaled(0.5f64.powi(s as i32));
    let mut e = pade(&scaled, &B13);
    for _ in 0..s {
        e = e.matmul(&e);
    }
    e
}

/// Computes `exp(A) * v` by forming `exp(A)` (fine for the small matrices in
/// this workspace) and applying it.
pub fn expm_apply(a: &Mat, v: &[f64]) -> Vec<f64> {
    expm(a).matvec(v)
}

/// Evaluates the `[m/m]` Padé approximant `r(A) = q(A)^{-1} p(A)` for the
/// exponential, given the coefficient table `b` of length `m+1`.
///
/// Using the standard even/odd splitting: `p(A) = U + V`, `q(A) = −U + V`
/// with `U` collecting odd powers and `V` even powers, so that
/// `r(A) = (−U+V)^{-1}(U+V)`.
fn pade(a: &Mat, b: &[f64]) -> Mat {
    let n = a.rows();
    let m = b.len() - 1;

    // Powers of A: A^0 = I, A^1, A^2, ... up to A^m.
    // m ≤ 13 and n ≤ ~30 in this workspace, so storing them is cheap.
    // For degree 13, Higham's factored form would save a few multiplies;
    // clarity wins at these sizes.
    let mut powers: Vec<Mat> = Vec::with_capacity(m + 1);
    powers.push(Mat::identity(n));
    for k in 1..=m {
        let next = powers[k - 1].matmul(a);
        powers.push(next);
    }

    let mut u = Mat::zeros(n, n); // odd terms
    let mut v = Mat::zeros(n, n); // even terms
    for (k, &bk) in b.iter().enumerate() {
        let target = if k % 2 == 1 { &mut u } else { &mut v };
        let term = powers[k].scaled(bk);
        *target += &term;
    }

    let p = &u + &v;
    let q = &v - &u;
    let lu = Lu::new(&q);
    lu.solve_mat(&p).expect("Padé denominator must be nonsingular")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_diff(a: &Mat, b: &Mat) -> f64 {
        a.max_abs_diff(b)
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Mat::zeros(4, 4);
        assert!(max_diff(&expm(&z), &Mat::identity(4)) < 1e-15);
    }

    #[test]
    fn exp_of_diagonal_matrix() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -2.0;
        a[(2, 2)] = 0.5;
        let e = expm(&a);
        assert!((e[(0, 0)] - 1.0f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2.0f64).exp()).abs() < 1e-12);
        assert!((e[(2, 2)] - 0.5f64.exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn exp_of_nilpotent_matrix_truncates() {
        // N = [[0,1],[0,0]] => exp(N) = I + N exactly.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = expm(&a);
        let expected = Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(max_diff(&e, &expected) < 1e-14);
    }

    #[test]
    fn exp_of_rotation_generator() {
        // A = [[0,-t],[t,0]] => exp(A) = [[cos t, -sin t],[sin t, cos t]].
        for &t in &[0.1, 1.0, 3.5, 10.0] {
            let a = Mat::from_rows(&[&[0.0, -t], &[t, 0.0]]);
            let e = expm(&a);
            assert!((e[(0, 0)] - t.cos()).abs() < 1e-10, "t={t}");
            assert!((e[(0, 1)] + t.sin()).abs() < 1e-10, "t={t}");
            assert!((e[(1, 0)] - t.sin()).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn additivity_for_same_matrix() {
        // exp(2A) == exp(A)^2 since A commutes with itself.
        let a = Mat::from_rows(&[&[0.3, 0.7, -0.1], &[0.2, -0.5, 0.4], &[0.0, 0.6, -0.2]]);
        let e2a = expm(&a.scaled(2.0));
        let ea = expm(&a);
        let sq = ea.matmul(&ea);
        assert!(max_diff(&e2a, &sq) < 1e-11);
    }

    #[test]
    fn large_norm_triggers_scaling_and_stays_accurate() {
        // Generator-like matrix scaled to a large norm: compare against
        // repeated squaring from a tiny step.
        let a = Mat::from_rows(&[&[-30.0, 30.0], &[10.0, -10.0]]);
        let e = expm(&a);
        // Reference: exp(A) = (exp(A/1024))^1024 with tiny-norm Padé.
        let mut r = expm(&a.scaled(1.0 / 1024.0));
        for _ in 0..10 {
            r = r.matmul(&r);
        }
        assert!(max_diff(&e, &r) < 1e-9);
    }

    #[test]
    fn row_convention_generator_gives_stochastic_transitions() {
        // Row-convention CTMC generator (rows sum to 0): exp(Qt) must be a
        // stochastic matrix (rows sum to 1, entries in [0,1]).
        let q = Mat::from_rows(&[&[-2.0, 2.0, 0.0], &[1.0, -3.0, 2.0], &[0.0, 1.5, -1.5]]);
        for &t in &[0.01, 0.5, 2.0, 10.0] {
            let p = expm(&q.scaled(t));
            for i in 0..3 {
                let s: f64 = p.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-10, "row {i} sums to {s} at t={t}");
                for &v in p.row(i) {
                    assert!((-1e-12..=1.0 + 1e-12).contains(&v));
                }
            }
        }
    }
}

//! Transient CTMC analysis via uniformization (a.k.a. randomization,
//! Jensen's method).
//!
//! For a *conservative generator* `Q` (row convention: off-diagonal entries
//! nonnegative, rows summing to zero) and an initial distribution `p₀`, the
//! distribution at time `t` is
//!
//! ```text
//! p(t) = p₀ · exp(Q t) = Σ_{k≥0} PoissonPmf(k; q t) · p₀ Pᵏ,   P = I + Q/q
//! ```
//!
//! where `q ≥ max_i |Q_ii|` is the uniformization rate. Because `P` is a
//! proper stochastic matrix, every term is a probability vector, making the
//! series unconditionally stable — the preferred method in queueing codes.
//! The truncation point is chosen so the neglected Poisson tail is below a
//! caller-supplied tolerance.
//!
//! This module serves as an independent cross-check of the Padé
//! [`crate::expm()`] path used for the paper's extended (non-generator) rate
//! matrices, and as a fast transient solver for pure queue-state questions.

use crate::matrix::Mat;

/// Errors reported by [`transient_distribution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UniformizationError {
    /// The matrix is not square.
    NotSquare,
    /// A row does not sum to (numerically) zero or an off-diagonal entry is
    /// negative, i.e. the matrix is not a conservative generator.
    NotAGenerator { row: usize },
    /// The initial vector is not a probability distribution.
    NotADistribution,
}

impl std::fmt::Display for UniformizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSquare => write!(f, "uniformization requires a square generator"),
            Self::NotAGenerator { row } => {
                write!(f, "row {row} violates the conservative-generator property")
            }
            Self::NotADistribution => write!(f, "initial vector is not a distribution"),
        }
    }
}

impl std::error::Error for UniformizationError {}

/// Validates that `q` is a conservative generator in row convention.
pub fn validate_generator(q: &Mat, tol: f64) -> Result<(), UniformizationError> {
    if !q.is_square() {
        return Err(UniformizationError::NotSquare);
    }
    for i in 0..q.rows() {
        let mut sum = 0.0;
        for j in 0..q.cols() {
            let v = q[(i, j)];
            sum += v;
            if i != j && v < -tol {
                return Err(UniformizationError::NotAGenerator { row: i });
            }
        }
        if sum.abs() > tol * (1.0 + q.norm_inf()) {
            return Err(UniformizationError::NotAGenerator { row: i });
        }
    }
    Ok(())
}

/// Computes `p₀ · exp(Q t)` for a conservative generator `Q` by
/// uniformization, truncating the Poisson series once the remaining tail
/// mass is below `tol`.
///
/// Returns the transient distribution at time `t`.
pub fn transient_distribution(
    q: &Mat,
    p0: &[f64],
    t: f64,
    tol: f64,
) -> Result<Vec<f64>, UniformizationError> {
    validate_generator(q, 1e-9)?;
    let n = q.rows();
    if p0.len() != n {
        return Err(UniformizationError::NotADistribution);
    }
    let mass: f64 = p0.iter().sum();
    if (mass - 1.0).abs() > 1e-9 || p0.iter().any(|&v| v < -1e-12) {
        return Err(UniformizationError::NotADistribution);
    }
    if t == 0.0 {
        return Ok(p0.to_vec());
    }

    // Uniformization rate: strictly positive even for the zero generator.
    let rate = (0..n).map(|i| -q[(i, i)]).fold(0.0f64, f64::max).max(1e-300);
    // Stochastic matrix P = I + Q / rate.
    let mut p = q.scaled(1.0 / rate);
    p.add_diag_mut(1.0);

    let qt = rate * t;
    // Iterate the Poisson-weighted series with running pmf recurrence
    // pmf(k) = pmf(k-1) * qt / k starting from pmf(0) = exp(-qt).
    // For large qt, exp(-qt) underflows; work with a scaled pmf and
    // renormalize through the cumulative weight actually accumulated.
    let mut vk = p0.to_vec(); // p₀ Pᵏ
    let mut out = vec![0.0; n];

    // Compute log pmf to avoid underflow: start at k0 = floor(qt) (the mode)
    // would be the fully robust choice, but for the model's qt ≲ 100 the
    // direct recurrence in linear space with an underflow floor is accurate;
    // guard with a log-space restart if exp(-qt) underflows.
    if qt < 700.0 {
        let mut pmf = (-qt).exp();
        let mut cumulative = pmf;
        for (o, v) in out.iter_mut().zip(vk.iter()) {
            *o += pmf * v;
        }
        let mut k = 0usize;
        while 1.0 - cumulative > tol {
            k += 1;
            vk = p.vecmat(&vk);
            pmf *= qt / k as f64;
            cumulative += pmf;
            for (o, v) in out.iter_mut().zip(vk.iter()) {
                *o += pmf * v;
            }
            if k > 100_000 {
                break; // defensive: tol unreachable in pathological inputs
            }
        }
        // The truncated tail mass (≤ tol) is redistributed by renormalizing,
        // keeping the output a proper distribution.
        let s: f64 = out.iter().sum();
        if s > 0.0 {
            for o in &mut out {
                *o /= s;
            }
        }
        Ok(out)
    } else {
        // Extremely long horizons: split the interval and recurse. Each half
        // has qt/2, so the recursion depth is logarithmic.
        let half = transient_distribution(q, p0, t / 2.0, tol / 2.0)?;
        transient_distribution(q, &half, t / 2.0, tol / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expm::expm;

    /// Row-convention birth–death generator on {0,..,b} with constant birth
    /// rate `lam` and death rate `mu`.
    fn birth_death(b: usize, lam: f64, mu: f64) -> Mat {
        let n = b + 1;
        let mut q = Mat::zeros(n, n);
        for i in 0..n {
            if i < b {
                q[(i, i + 1)] = lam;
            }
            if i > 0 {
                q[(i, i - 1)] = mu;
            }
            let total = q.row(i).iter().sum::<f64>() - q[(i, i)];
            q[(i, i)] = -total;
        }
        q
    }

    #[test]
    fn matches_pade_expm_on_birth_death() {
        let q = birth_death(5, 0.9, 1.0);
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for &t in &[0.1, 1.0, 5.0, 10.0] {
            let via_uni = transient_distribution(&q, &p0, t, 1e-12).unwrap();
            let via_pade = expm(&q.scaled(t)).vecmat(&p0);
            for (a, b) in via_uni.iter().zip(via_pade.iter()) {
                assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn long_horizon_converges_to_stationary() {
        // M/M/1/B stationary distribution: geometric in rho = lam/mu.
        let (lam, mu, b) = (0.5, 1.0, 4usize);
        let q = birth_death(b, lam, mu);
        let p0 = [0.0, 0.0, 1.0, 0.0, 0.0];
        let p = transient_distribution(&q, &p0, 2000.0, 1e-12).unwrap();
        let rho: f64 = lam / mu;
        let norm: f64 = (0..=b).map(|k| rho.powi(k as i32)).sum();
        for (k, &v) in p.iter().enumerate() {
            let expect = rho.powi(k as i32) / norm;
            assert!((v - expect).abs() < 1e-8, "state {k}: {v} vs {expect}");
        }
    }

    #[test]
    fn zero_time_returns_input() {
        let q = birth_death(3, 1.0, 2.0);
        let p0 = [0.25, 0.25, 0.25, 0.25];
        let p = transient_distribution(&q, &p0, 0.0, 1e-12).unwrap();
        assert_eq!(p, p0.to_vec());
    }

    #[test]
    fn output_is_distribution() {
        let q = birth_death(6, 2.0, 0.5);
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let p = transient_distribution(&q, &p0, 3.0, 1e-12).unwrap();
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn rejects_non_generator() {
        let m = Mat::from_rows(&[&[0.5, 0.5], &[0.1, -0.1]]);
        let err = transient_distribution(&m, &[1.0, 0.0], 1.0, 1e-10).unwrap_err();
        assert!(matches!(err, UniformizationError::NotAGenerator { .. }));
    }

    #[test]
    fn rejects_bad_distribution() {
        let q = birth_death(2, 1.0, 1.0);
        let err = transient_distribution(&q, &[0.9, 0.0, 0.0], 1.0, 1e-10).unwrap_err();
        assert_eq!(err, UniformizationError::NotADistribution);
    }
}

//! Stationary distributions of finite CTMCs and DTMCs.
//!
//! Solves `π·Q = 0, Σπ = 1` (row-convention generator `Q`) by replacing
//! one balance equation with the normalization constraint and LU-solving
//! the resulting nonsingular system — the textbook direct method, exact up
//! to round-off for the small chains in this workspace. Used as an oracle
//! by the queueing substrate and for long-run load statistics.

use crate::lu::Lu;
use crate::matrix::Mat;
use crate::uniformization::validate_generator;

/// Errors from the stationary solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StationaryError {
    /// The input is not a conservative generator / stochastic matrix.
    InvalidChain,
    /// The linear system was singular (reducible chain with multiple
    /// recurrent classes — no unique stationary distribution).
    NotUnique,
}

impl std::fmt::Display for StationaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidChain => write!(f, "input is not a valid chain"),
            Self::NotUnique => write!(f, "stationary distribution is not unique"),
        }
    }
}

impl std::error::Error for StationaryError {}

/// Stationary distribution of a conservative CTMC generator (row
/// convention).
pub fn ctmc_stationary(q: &Mat) -> Result<Vec<f64>, StationaryError> {
    validate_generator(q, 1e-9).map_err(|_| StationaryError::InvalidChain)?;
    let n = q.rows();
    // Build Aᵀ where A is Q with its last column replaced by ones:
    // π·Q = 0 with Σπ = 1  ⇔  Aᵀ·πᵀ = e_n.
    let mut at = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            at[(j, i)] = if j == n - 1 { 1.0 } else { q[(i, j)] };
        }
    }
    let lu = Lu::new(&at);
    let mut rhs = vec![0.0; n];
    rhs[n - 1] = 1.0;
    let pi = lu.solve_vec(&rhs).ok_or(StationaryError::NotUnique)?;
    if pi.iter().any(|&p| p < -1e-9) {
        return Err(StationaryError::NotUnique);
    }
    Ok(pi.into_iter().map(|p| p.max(0.0)).collect())
}

/// Stationary distribution of a row-stochastic DTMC kernel.
pub fn dtmc_stationary(p: &Mat) -> Result<Vec<f64>, StationaryError> {
    if !p.is_square() {
        return Err(StationaryError::InvalidChain);
    }
    let n = p.rows();
    for i in 0..n {
        let s: f64 = p.row(i).iter().sum();
        if (s - 1.0).abs() > 1e-9 || p.row(i).iter().any(|&v| v < -1e-12) {
            return Err(StationaryError::InvalidChain);
        }
    }
    // π(P − I) = 0: reuse the CTMC path with generator Q = P − I.
    let mut q = p.clone();
    q.add_diag_mut(-1.0);
    ctmc_stationary(&q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birth_death(b: usize, lam: f64, mu: f64) -> Mat {
        let n = b + 1;
        let mut q = Mat::zeros(n, n);
        for i in 0..n {
            if i < b {
                q[(i, i + 1)] = lam;
                q[(i, i)] -= lam;
            }
            if i > 0 {
                q[(i, i - 1)] = mu;
                q[(i, i)] -= mu;
            }
        }
        q
    }

    #[test]
    fn matches_mm1b_closed_form() {
        let (lam, mu, b) = (0.7, 1.0, 5usize);
        let pi = ctmc_stationary(&birth_death(b, lam, mu)).unwrap();
        let rho: f64 = lam / mu;
        let norm: f64 = (0..=b).map(|k| rho.powi(k as i32)).sum();
        for (k, &p) in pi.iter().enumerate() {
            assert!((p - rho.powi(k as i32) / norm).abs() < 1e-12, "state {k}");
        }
    }

    #[test]
    fn two_state_chain() {
        // Rates a (0->1), b (1->0): π = (b, a)/(a+b).
        let mut q = Mat::zeros(2, 2);
        q[(0, 1)] = 1.5;
        q[(0, 0)] = -1.5;
        q[(1, 0)] = 0.5;
        q[(1, 1)] = -0.5;
        let pi = ctmc_stationary(&q).unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-12);
        assert!((pi[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dtmc_paper_modulation_kernel() {
        let p = Mat::from_rows(&[&[0.8, 0.2], &[0.5, 0.5]]);
        let pi = dtmc_stationary(&p).unwrap();
        assert!((pi[0] - 5.0 / 7.0).abs() < 1e-12);
        assert!((pi[1] - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_generator() {
        let m = Mat::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]);
        assert_eq!(ctmc_stationary(&m).unwrap_err(), StationaryError::InvalidChain);
    }

    #[test]
    fn reducible_chain_reports_non_uniqueness() {
        // Two absorbing states: no unique stationary distribution.
        let q = Mat::zeros(2, 2);
        assert_eq!(ctmc_stationary(&q).unwrap_err(), StationaryError::NotUnique);
    }

    #[test]
    fn stationary_is_fixed_point_of_transient() {
        let q = birth_death(4, 1.2, 0.9);
        let pi = ctmc_stationary(&q).unwrap();
        let moved = crate::transient_distribution(&q, &pi, 7.5, 1e-13).unwrap();
        for (a, b) in pi.iter().zip(moved.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

//! Scalar statistics used across the workspace.
//!
//! * running/batch summary statistics ([`Summary`]),
//! * 95% (or arbitrary-level) confidence intervals as plotted in the
//!   paper's Figures 4–6,
//! * chi-square goodness-of-fit machinery (regularized incomplete gamma)
//!   used to validate the hand-rolled Poisson/binomial/alias samplers.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample: count, mean and unbiased variance,
/// accumulated with Welford's online algorithm (numerically stable for the
/// long Monte-Carlo streams of the experiment harness).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided confidence interval for the mean at the given level using
    /// the Student-t critical value (matches the paper's 95% error bars).
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        if self.n < 2 {
            return (self.mean(), self.mean());
        }
        let t = student_t_critical(self.n - 1, level);
        let half = t * self.std_err();
        (self.mean - half, self.mean + half)
    }

    /// Convenience accessor for the 95% half-width.
    pub fn ci95_half_width(&self) -> f64 {
        let (lo, hi) = self.confidence_interval(0.95);
        (hi - lo) / 2.0
    }
}

/// Two-sided Student-t critical value `t_{(1+level)/2, df}`.
///
/// Computed by inverting the CDF with bisection on top of the regularized
/// incomplete beta function; accurate to ~1e-8 which is far below the Monte
/// Carlo noise it is used to quantify.
pub fn student_t_critical(df: u64, level: f64) -> f64 {
    assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
    let p = 0.5 + level / 2.0; // upper-tail quantile position
    let mut lo = 0.0f64;
    let mut hi = 1e3f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df as f64) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Student-t cumulative distribution function.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let ib = regularized_incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - 0.5 * ib
    } else {
        0.5 * ib
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from the classic Lanczos g=7 fit; |error| < 1e-13 for
    // x > 0 after the reflection below.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
pub fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut k = a;
        for _ in 0..500 {
            k += 1.0;
            term *= x / k;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for the upper tail (Lentz's algorithm).
        1.0 - regularized_upper_gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma via continued fraction.
fn regularized_upper_gamma_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)` via the standard
/// continued fraction with the symmetry transformation for convergence.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0);
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Chi-square survival function (upper tail probability) with `df` degrees
/// of freedom: `P(X > stat)`.
pub fn chi_square_sf(stat: f64, df: f64) -> f64 {
    assert!(stat >= 0.0 && df > 0.0);
    1.0 - regularized_lower_gamma(df / 2.0, stat / 2.0)
}

/// Pearson chi-square goodness-of-fit statistic for observed counts against
/// expected counts. Bins with expected count below `min_expected` are pooled
/// into their neighbour to keep the asymptotics valid.
///
/// Returns `(statistic, degrees_of_freedom, p_value)`.
pub fn chi_square_test(observed: &[f64], expected: &[f64], min_expected: f64) -> (f64, f64, f64) {
    assert_eq!(observed.len(), expected.len());
    let mut stat = 0.0;
    let mut bins = 0usize;
    let mut pool_obs = 0.0;
    let mut pool_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected.iter()) {
        pool_obs += o;
        pool_exp += e;
        if pool_exp >= min_expected {
            stat += (pool_obs - pool_exp).powi(2) / pool_exp;
            bins += 1;
            pool_obs = 0.0;
            pool_exp = 0.0;
        }
    }
    if pool_exp > 0.0 {
        if bins > 0 {
            // Fold the trailing under-filled pool into the statistic anyway;
            // it has positive expectation so the test stays conservative.
            stat += (pool_obs - pool_exp).powi(2) / pool_exp;
            bins += 1;
        } else {
            bins = 1;
        }
    }
    let df = (bins.max(2) - 1) as f64;
    let p = chi_square_sf(stat, df);
    (stat, df, p)
}

/// Welch's unequal-variances t-test for the difference of two means.
///
/// Returns `(t statistic, Satterthwaite degrees of freedom, two-sided
/// p-value)` for `H₀: mean(a) = mean(b)`. Used by the experiment harness
/// to report whether "MF beats JSQ(2)" is statistically significant at a
/// given system size, instead of eyeballing overlapping error bars.
///
/// # Panics
/// Panics unless both summaries hold at least two observations.
pub fn welch_t_test(a: &Summary, b: &Summary) -> (f64, f64, f64) {
    assert!(a.count() >= 2 && b.count() >= 2, "need ≥ 2 samples per group");
    let (na, nb) = (a.count() as f64, b.count() as f64);
    let (va, vb) = (a.variance() / na, b.variance() / nb);
    let se = (va + vb).sqrt();
    if se == 0.0 {
        // Degenerate zero-variance groups: identical means ⇒ p = 1.
        let p = if (a.mean() - b.mean()).abs() < 1e-300 { 1.0 } else { 0.0 };
        return (if p == 1.0 { 0.0 } else { f64::INFINITY }, na + nb - 2.0, p);
    }
    let t = (a.mean() - b.mean()) / se;
    // Welch–Satterthwaite effective degrees of freedom.
    let df = (va + vb) * (va + vb) / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    (t, df, p.clamp(0.0, 1.0))
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept, r²)`. Used by the Theorem-1 rate
/// experiment to fit `log gap` against `log M` and read off the
/// empirical convergence order.
///
/// # Panics
/// Panics on mismatched lengths, fewer than two points, or degenerate
/// (constant) x values.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let (dx, dy) = (x - mean_x, y - mean_y);
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "x values are constant");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    (slope, intercept, r2)
}

/// A tiny SplitMix64 generator so the bootstrap stays dependency-free
/// (this crate deliberately avoids a `rand` dependency in non-test code).
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`.
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Percentile-bootstrap confidence interval for the mean of a sample.
///
/// Resamples with replacement `resamples` times and returns the
/// `(1±level)/2` percentiles of the resampled means — a distribution-free
/// complement to the Student-t interval of
/// [`Summary::confidence_interval`], preferable for the skewed per-run
/// drop totals of lightly loaded systems.
///
/// # Panics
/// Panics on an empty sample, a silly level, or zero resamples.
pub fn bootstrap_mean_ci(xs: &[f64], level: f64, resamples: usize, seed: u64) -> (f64, f64) {
    assert!(!xs.is_empty(), "empty sample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0,1)");
    assert!(resamples >= 10, "need a meaningful number of resamples");
    let n = xs.len();
    let mut rng = SplitMix64(seed ^ 0xB007_57A9);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut total = 0.0;
        for _ in 0..n {
            total += xs[rng.index(n)];
        }
        means.push(total / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| {
        let pos = (q * (resamples - 1) as f64).round() as usize;
        means[pos.min(resamples - 1)]
    };
    (pick(alpha), pick(1.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_pooled_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0).collect();
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        let full = Summary::from_slice(&xs);
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.variance() - full.variance()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..12u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "n={n}");
        }
        // Gamma(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert!((regularized_lower_gamma(3.0, 0.0) - 0.0).abs() < 1e-15);
        assert!((regularized_lower_gamma(3.0, 1e3) - 1.0).abs() < 1e-12);
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.1, 1.0, 2.5] {
            assert!((regularized_lower_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn chi_square_sf_known_values() {
        // df=1: P(X > 3.841) ≈ 0.05; df=10: P(X > 18.307) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 2e-3);
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 2e-3);
        assert!((chi_square_sf(0.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn student_t_critical_known_values() {
        // Classic table values for 95% two-sided.
        assert!((student_t_critical(1, 0.95) - 12.706).abs() < 1e-2);
        assert!((student_t_critical(10, 0.95) - 2.228).abs() < 1e-2);
        assert!((student_t_critical(100, 0.95) - 1.984).abs() < 1e-2);
        // Large df approaches the normal z = 1.96.
        assert!((student_t_critical(100_000, 0.95) - 1.96).abs() < 1e-2);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.0, 0.2)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn chi_square_test_accepts_exact_match() {
        let obs = [10.0, 20.0, 30.0, 40.0];
        let (stat, _, p) = chi_square_test(&obs, &obs, 5.0);
        assert!(stat < 1e-12);
        assert!(p > 0.999);
    }

    #[test]
    fn chi_square_test_rejects_gross_mismatch() {
        let obs = [100.0, 0.0, 0.0, 0.0];
        let exp = [25.0, 25.0, 25.0, 25.0];
        let (_, _, p) = chi_square_test(&obs, &exp, 5.0);
        assert!(p < 1e-6);
    }

    #[test]
    fn confidence_interval_covers_mean_reasonably() {
        let xs: Vec<f64> = (0..50).map(|i| 10.0 + ((i * 7919) % 13) as f64 * 0.1).collect();
        let s = Summary::from_slice(&xs);
        let (lo, hi) = s.confidence_interval(0.95);
        assert!(lo < s.mean() && s.mean() < hi);
        assert!(hi - lo < 2.0);
    }

    #[test]
    fn welch_accepts_identical_groups() {
        let xs: Vec<f64> = (0..40).map(|i| ((i * 31) % 17) as f64).collect();
        let a = Summary::from_slice(&xs);
        let (t, df, p) = welch_t_test(&a, &a);
        assert!(t.abs() < 1e-12);
        assert!(df > 10.0);
        assert!(p > 0.999);
    }

    #[test]
    fn welch_detects_separated_groups() {
        let a =
            Summary::from_slice(&(0..30).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect::<Vec<_>>());
        let b =
            Summary::from_slice(&(0..30).map(|i| 9.0 + (i % 7) as f64 * 0.1).collect::<Vec<_>>());
        let (t, _, p) = welch_t_test(&a, &b);
        assert!(t < -10.0, "t = {t}");
        assert!(p < 1e-9, "p = {p}");
    }

    #[test]
    fn welch_matches_textbook_example() {
        // Two small groups with hand-computed Welch statistic.
        let a = Summary::from_slice(&[
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ]);
        let b = Summary::from_slice(&[
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ]);
        let (t, df, p) = welch_t_test(&a, &b);
        // Reference values computed independently (Welch formulas + the
        // regularized incomplete beta): t ≈ −2.83526, df ≈ 27.7136,
        // two-sided p ≈ 0.0084527.
        assert!((t - (-2.8352638)).abs() < 1e-6, "t = {t}");
        assert!((df - 27.713626).abs() < 1e-4, "df = {df}");
        assert!((p - 0.0084527).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn welch_symmetry_in_group_order() {
        let a = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 2.5]);
        let b = Summary::from_slice(&[2.0, 3.5, 4.0, 5.0, 3.0, 2.8]);
        let (t_ab, df_ab, p_ab) = welch_t_test(&a, &b);
        let (t_ba, df_ba, p_ba) = welch_t_test(&b, &a);
        assert!((t_ab + t_ba).abs() < 1e-12);
        assert!((df_ab - df_ba).abs() < 1e-12);
        assert!((p_ab - p_ba).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_interval_brackets_mean_and_shrinks() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 97) % 31) as f64 * 0.3).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 2000, 1);
        assert!(lo < mean && mean < hi, "[{lo}, {hi}] should bracket {mean}");
        // A wider confidence level gives a wider interval.
        let (lo99, hi99) = bootstrap_mean_ci(&xs, 0.99, 2000, 1);
        assert!(lo99 <= lo && hi99 >= hi);
        // A larger sample gives a tighter interval.
        let quarter: Vec<f64> = xs.iter().take(50).copied().collect();
        let (qlo, qhi) = bootstrap_mean_ci(&quarter, 0.95, 2000, 1);
        assert!(hi - lo < qhi - qlo + 1e-9);
    }

    #[test]
    fn bootstrap_is_deterministic_in_seed() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(bootstrap_mean_ci(&xs, 0.95, 500, 42), bootstrap_mean_ci(&xs, 0.95, 500, 42));
        assert_ne!(bootstrap_mean_ci(&xs, 0.95, 500, 42), bootstrap_mean_ci(&xs, 0.95, 500, 43));
    }

    #[test]
    fn bootstrap_constant_sample_is_degenerate_point() {
        let xs = vec![3.25; 30];
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 200, 7);
        assert_eq!(lo, 3.25);
        assert_eq!(hi, 3.25);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.5 * x + 2.0).collect();
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope + 0.5).abs() < 1e-12);
        assert!((intercept - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_handles_noise_with_reduced_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x - 1.0 + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope - 3.0).abs() < 0.05, "slope {slope}");
        assert!((intercept + 1.0).abs() < 0.3, "intercept {intercept}");
        assert!(r2 > 0.98 && r2 < 1.0, "r2 {r2}");
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn linear_fit_rejects_constant_x() {
        linear_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }
}

//! LU decomposition with partial pivoting.
//!
//! Needed by the Padé matrix exponential ([`crate::expm()`]), which solves a
//! linear system `(−U + V)·R = (U + V)` at its final step, and generally
//! useful for stationary-distribution computations in the queueing
//! substrate.

use crate::matrix::Mat;

/// An LU factorization `P·A = L·U` of a square matrix with partial
/// (row) pivoting.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper, including
    /// diagonal) factors, stored in-place.
    lu: Mat,
    /// Row permutation: row `i` of `L·U` corresponds to row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used by [`Lu::det`].
    perm_sign: f64,
    /// Whether a zero (to working precision) pivot was encountered.
    singular: bool,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn new(a: &Mat) -> Self {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular = false;

        for k in 0..n {
            // Find the pivot: the largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 {
                singular = true;
                continue;
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let upd = factor * lu[(k, j)];
                        lu[(i, j)] -= upd;
                    }
                }
            }
        }
        Self { lu, perm, perm_sign, singular }
    }

    /// `true` iff a zero pivot was hit (matrix numerically singular).
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.lu.rows();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// Returns `None` if the factorization is singular.
    // Triangular substitution indexes `x` at lag `j < i`, which iterator
    // adapters would only obscure.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_vec(&self, b: &[f64]) -> Option<Vec<f64>> {
        if self.singular {
            return None;
        }
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation, then forward substitution with unit L.
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Some(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// Returns `None` if the factorization is singular.
    pub fn solve_mat(&self, b: &Mat) -> Option<Mat> {
        if self.singular {
            return None;
        }
        let n = self.lu.rows();
        assert_eq!(b.rows(), n, "rhs row count mismatch");
        let mut out = Mat::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve_vec(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Some(out)
    }

    /// Inverse of the original matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<Mat> {
        self.solve_mat(&Mat::identity(self.lu.rows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Mat, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter().zip(b.iter()).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max)
    }

    #[test]
    fn solves_well_conditioned_system() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let b = [1.0, 2.0, 3.0];
        let lu = Lu::new(&a);
        let x = lu.solve_vec(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a);
        assert!(!lu.is_singular());
        let x = lu.solve_vec(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let lu = Lu::new(&a);
        assert!(lu.is_singular());
        assert!(lu.solve_vec(&[1.0, 1.0]).is_none());
        assert_eq!(lu.det(), 0.0);
    }

    #[test]
    fn determinant_of_triangular_matrix() {
        let a = Mat::from_rows(&[&[2.0, 1.0, 5.0], &[0.0, 3.0, -1.0], &[0.0, 0.0, 4.0]]);
        let lu = Lu::new(&a);
        assert!((lu.det() - 24.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Mat::from_rows(&[&[3.0, 0.5, -1.0], &[0.2, 2.0, 0.3], &[-0.7, 0.1, 1.5]]);
        let inv = Lu::new(&a).inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-12);
    }

    #[test]
    fn solve_mat_matches_columnwise_solves() {
        let a = Mat::from_rows(&[&[5.0, 1.0], &[2.0, 3.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let lu = Lu::new(&a);
        let x = lu.solve_mat(&b).unwrap();
        let prod = a.matmul(&x);
        assert!(prod.max_abs_diff(&Mat::identity(2)) < 1e-12);
    }
}

//! Crate-level property tests for the linear-algebra kernels.

use mflb_linalg::stats::Summary;
use mflb_linalg::{ctmc_stationary, expm, transient_distribution, Lu, Mat};
use proptest::prelude::*;

/// Strategy: a random well-conditioned-ish square matrix (diagonally
/// dominated to keep LU solvable).
fn dd_matrix(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i] += 4.0; // diagonal dominance
        }
        Mat::from_vec(n, n, v)
    })
}

/// Strategy: a random conservative generator on n states.
fn generator(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(0.0f64..2.0, n * n).prop_map(move |v| {
        let mut q = Mat::zeros(n, n);
        for i in 0..n {
            let mut total = 0.0;
            for j in 0..n {
                if i != j {
                    let r = v[i * n + j];
                    q[(i, j)] = r;
                    total += r;
                }
            }
            q[(i, i)] = -total;
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solves_diagonally_dominant_systems(a in dd_matrix(5), b in proptest::collection::vec(-3.0f64..3.0, 5)) {
        let lu = Lu::new(&a);
        prop_assert!(!lu.is_singular());
        let x = lu.solve_vec(&b).unwrap();
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(b.iter()) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_determinant_is_multiplicative(a in dd_matrix(4), b in dd_matrix(4)) {
        let da = Lu::new(&a).det();
        let db = Lu::new(&b).det();
        let dab = Lu::new(&a.matmul(&b)).det();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn expm_matches_uniformization_on_random_generators(q in generator(5), t in 0.05f64..8.0) {
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0];
        let via_uni = transient_distribution(&q, &p0, t, 1e-13).unwrap();
        let via_pade = expm(&q.scaled(t)).vecmat(&p0);
        for (a, b) in via_uni.iter().zip(via_pade.iter()) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn stationary_is_invariant_under_expm(q in generator(4)) {
        // Perturb to ensure irreducibility (strictly positive off-diagonal).
        let mut qq = q.clone();
        for i in 0..4 {
            for j in 0..4 {
                if i != j && qq[(i, j)] < 0.05 {
                    let bump = 0.05 - qq[(i, j)];
                    qq[(i, j)] += bump;
                    qq[(i, i)] -= bump;
                }
            }
        }
        let pi = ctmc_stationary(&qq).unwrap();
        let moved = expm(&qq.scaled(3.0)).vecmat(&pi);
        for (a, b) in pi.iter().zip(moved.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn summary_merge_is_associative_enough(
        xs in proptest::collection::vec(-10.0f64..10.0, 3..60),
        split in 0usize..60,
    ) {
        let k = split.min(xs.len());
        let mut left = Summary::from_slice(&xs[..k]);
        let right = Summary::from_slice(&xs[k..]);
        left.merge(&right);
        let full = Summary::from_slice(&xs);
        prop_assert!((left.mean() - full.mean()).abs() < 1e-10);
        prop_assert!((left.variance() - full.variance()).abs() < 1e-8);
        prop_assert_eq!(left.count(), full.count());
    }

    #[test]
    fn matrix_norm_inequalities(a in dd_matrix(4)) {
        // ‖A‖_F ≤ √(rank)·‖A‖₂ ≤ ... we check the easy consistency
        // relations between implemented norms: ‖A‖₁, ‖A‖_∞ ≥ max |a_ij|.
        let max_entry = a
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        prop_assert!(a.norm_one() >= max_entry - 1e-12);
        prop_assert!(a.norm_inf() >= max_entry - 1e-12);
        prop_assert!(a.norm_fro() >= max_entry - 1e-12);
    }
}

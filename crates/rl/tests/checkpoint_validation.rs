//! Round-trip and strict-validation behaviour of the versioned checkpoint.

use mflb_core::SystemConfig;
use mflb_rl::{train_scenario, PpoConfig, TrainingCheckpoint, CHECKPOINT_FORMAT_VERSION};
use mflb_sim::{EngineSpec, Scenario, ServiceLaw};

fn tiny_ppo() -> PpoConfig {
    PpoConfig {
        train_batch_size: 64,
        minibatch_size: 32,
        num_epochs: 1,
        hidden: vec![8],
        rollout_threads: 2,
        ..PpoConfig::paper()
    }
}

fn small_config() -> SystemConfig {
    let mut c = SystemConfig::paper().with_size(100, 10).with_dt(5.0);
    c.train_episode_len = 8;
    c
}

fn train_tiny(scenario: &Scenario) -> mflb_rl::TrainResult {
    train_scenario(scenario, tiny_ppo(), 1, 1, false).expect("tiny training")
}

#[test]
fn checkpoint_round_trips_through_disk_and_preserves_decisions() {
    let scenario = Scenario::new(small_config(), EngineSpec::Aggregate);
    let result = train_tiny(&scenario);
    let dir = std::env::temp_dir().join("mflb_ckpt_roundtrip");
    let path = dir.join("ckpt.json");
    result.checkpoint.save(&path).unwrap();

    let loaded = TrainingCheckpoint::load(&path).unwrap();
    assert_eq!(loaded.format_version, CHECKPOINT_FORMAT_VERSION);
    assert_eq!(loaded.scenario, scenario);
    assert_eq!(loaded.total_steps, result.checkpoint.total_steps);
    assert_eq!(loaded.curve.len(), result.checkpoint.curve.len());

    let policy = loaded.into_policy().unwrap();
    let dist = mflb_core::StateDist::new(vec![0.4, 0.3, 0.15, 0.1, 0.03, 0.02]);
    let a = mflb_core::mdp::UpperPolicy::decide(&result.policy, &dist, 1, 0.6);
    let b = mflb_core::mdp::UpperPolicy::decide(&policy, &dist, 1, 0.6);
    assert!(a.max_abs_diff(&b) < 1e-15, "reloaded policy must decide identically");
    std::fs::remove_file(&path).ok();
}

#[test]
fn dim_mismatch_against_target_scenario_is_rejected() {
    let homog = Scenario::new(small_config(), EngineSpec::Aggregate);
    let ckpt = train_tiny(&homog).checkpoint;

    // Same config, heterogeneous engine: needs composite-rule logits.
    let mut rates = vec![1.6; 5];
    rates.extend(vec![0.4; 5]);
    let hetero = Scenario::new(small_config(), EngineSpec::Hetero { rates });
    let err = ckpt.validate_for(&hetero).unwrap_err();
    assert!(err.contains("logits"), "should name the action-dim mismatch: {err}");

    // Wider buffer: observation dim changes.
    let wide = Scenario::new(small_config().with_buffer(9), EngineSpec::Aggregate);
    let err = ckpt.validate_for(&wide).unwrap_err();
    assert!(err.contains("observes"), "should name the obs-dim mismatch: {err}");

    // The checkpoint remains valid against its own scenario.
    ckpt.validate().unwrap();
}

#[test]
fn hetero_checkpoint_deploys_only_against_matching_pools() {
    let mut rates = vec![1.6; 5];
    rates.extend(vec![0.4; 5]);
    let hetero = Scenario::new(small_config(), EngineSpec::Hetero { rates });
    let ckpt = train_tiny(&hetero).checkpoint;
    ckpt.validate().unwrap();

    let homog = Scenario::new(small_config(), EngineSpec::Aggregate);
    assert!(ckpt.validate_for(&homog).is_err(), "composite policy must not deploy homogeneous");

    // A PH scenario shares the homogeneous shape, so the homogeneous
    // mismatch message is the same; a 3-class pool differs again.
    let three: Vec<f64> = vec![2.0, 1.0, 0.5, 2.0, 1.0, 0.5, 2.0, 1.0, 0.5, 2.0];
    let other = Scenario::new(small_config(), EngineSpec::Hetero { rates: three });
    assert!(ckpt.validate_for(&other).is_err());
}

#[test]
fn unsupported_format_version_is_rejected() {
    let scenario = Scenario::new(small_config(), EngineSpec::Aggregate);
    let ckpt = train_tiny(&scenario).checkpoint;
    let json = ckpt.to_json();
    let bumped = json.replace(
        &format!("\"format_version\":{CHECKPOINT_FORMAT_VERSION}"),
        &format!("\"format_version\":{}", CHECKPOINT_FORMAT_VERSION + 1),
    );
    assert_ne!(json, bumped, "version field must be present in the JSON");
    let err = TrainingCheckpoint::from_json(&bumped).unwrap_err();
    assert!(err.contains("format version"), "{err}");
}

#[test]
fn corrupt_json_is_a_parse_error_not_a_panic() {
    assert!(TrainingCheckpoint::from_json("{\"not\": \"a checkpoint\"}").is_err());
    assert!(TrainingCheckpoint::from_json("}garbage{").is_err());
    assert!(TrainingCheckpoint::load("/nonexistent/ckpt.json").is_err());
}

#[test]
fn eval_report_structure_for_ph_scenario() {
    let scenario = Scenario::new(
        small_config(),
        EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
    );
    let result = train_tiny(&scenario);
    let report = mflb_rl::evaluate_checkpoint(&result.checkpoint, &scenario, &[], 3, 1, 0).unwrap();
    assert_eq!(report.rows.len(), 4, "learned + 3 baselines at the scenario's own size");
    assert!(report.rows.iter().all(|r| r.mean_drops.is_finite() && r.ci95 >= 0.0));
    assert!(report.mean_drops_of("MF (learned)").is_some());
    let json = report.to_json();
    assert!(json.contains("\"rows\""));
}

//! Heap-allocation budget of the PPO minibatch loop.
//!
//! `PpoTrainer::update` owns long-lived workspaces (observation gathers,
//! network activations/gradients, flat-gradient buffers, Gaussian scratch),
//! so after a warm-up call the whole minibatch-SGD phase must run in O(1)
//! heap allocations — independent of batch size, epoch count and minibatch
//! count. A counting global allocator makes that a hard invariant instead
//! of a code-review hope.
//!
//! This file deliberately contains a single test: the counter is global,
//! and a sibling test running concurrently would pollute the count.

use mflb_rl::{Env, PpoConfig, PpoTrainer, ToyControlEnv};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts allocations (and reallocations) while `COUNTING` is on.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn update_performs_o1_allocations_after_warmup() {
    let env = ToyControlEnv::new(16);
    let cfg = PpoConfig {
        train_batch_size: 512,
        // 512 / 96 leaves a short final minibatch, so the workspaces must
        // absorb the batch-size alternation without reallocating.
        minibatch_size: 96,
        num_epochs: 3,
        hidden: vec![32, 32],
        ..PpoConfig::paper()
    };
    let mut trainer = PpoTrainer::new(&env as &dyn Env, cfg, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let (buffer, _) = trainer.collect_batch();

    // Warm-up: the first update may allocate freely (workspace growth).
    trainer.update(&buffer, &mut rng);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    trainer.update(&buffer, &mut rng);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);

    // 3 epochs × 6 minibatches over 512 samples: the historical
    // implementation allocated hundreds of buffers per minibatch. O(1)
    // here means "a small constant for the whole call"; 16 leaves head
    // room for incidental one-offs without letting per-minibatch (≥ 18)
    // or per-sample allocation patterns back in.
    assert!(allocs <= 16, "update() allocated {allocs} times after warm-up (want O(1) ≤ 16)");
}

//! Seed-pinned determinism of the episode-indexed PPO rollout scheme.
//!
//! Episodes draw all randomness from RNG streams pinned to their global
//! episode index and are merged in index order, so the worker count is a
//! pure throughput knob: training with 1 worker and with `k` workers must
//! produce **bit-identical** networks, and repeated runs at a fixed seed
//! must produce bit-identical checkpoints.

use mflb_core::SystemConfig;
use mflb_rl::{train_scenario, Env, MfcEnv, PpoConfig, PpoTrainer, ToyControlEnv};
use mflb_sim::{EngineSpec, Scenario, ServiceLaw};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_ppo(threads: usize) -> PpoConfig {
    PpoConfig {
        lr: 1e-3,
        train_batch_size: 128,
        minibatch_size: 32,
        num_epochs: 2,
        hidden: vec![8, 8],
        rollout_threads: threads,
        ..PpoConfig::paper()
    }
}

/// Trains `iters` iterations and returns the flat parameter vectors of
/// both networks plus the log-stds.
fn train_params(env: &dyn Env, threads: usize, seed: u64, iters: usize) -> Vec<f64> {
    let mut trainer = PpoTrainer::new(env, tiny_ppo(threads), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD5);
    for _ in 0..iters {
        trainer.train_iteration(&mut rng);
    }
    let mut out = trainer.policy_net().params_vec();
    out.extend(trainer.value_net().params_vec());
    out.extend_from_slice(trainer.log_std());
    out
}

#[test]
fn one_worker_and_k_workers_produce_identical_nets_fixed_horizon() {
    // MfcEnv has a fixed horizon, exercising the exact-demand dispatch.
    let mut config = SystemConfig::paper().with_dt(5.0);
    config.train_episode_len = 10;
    let env = MfcEnv::new(config);
    let single = train_params(&env, 1, 3, 2);
    let multi = train_params(&env, 3, 3, 2);
    assert_eq!(single, multi, "worker count must not affect training");
}

#[test]
fn one_worker_and_k_workers_produce_identical_nets_dynamic_horizon() {
    // Hide the horizon to exercise the collect-until-full path, where
    // workers can overshoot and the deterministic prefix discards extras.
    struct NoHint(ToyControlEnv);
    impl Env for NoHint {
        fn obs_dim(&self) -> usize {
            self.0.obs_dim()
        }
        fn act_dim(&self) -> usize {
            self.0.act_dim()
        }
        fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
            self.0.reset(rng)
        }
        fn step(&mut self, action: &[f64], rng: &mut StdRng) -> mflb_rl::StepResult {
            self.0.step(action, rng)
        }
        fn boxed_clone(&self) -> Box<dyn Env> {
            Box::new(NoHint(self.0.clone()))
        }
        // horizon_hint deliberately left at the default None.
    }
    let env = NoHint(ToyControlEnv::new(7));
    let single = train_params(&env, 1, 11, 3);
    let multi = train_params(&env, 4, 11, 3);
    assert_eq!(single, multi, "dynamic-horizon collection must be worker-count-invariant");
}

#[test]
fn repeated_runs_at_fixed_seed_produce_identical_checkpoints() {
    let mut config = SystemConfig::paper().with_size(100, 10).with_dt(5.0);
    config.train_episode_len = 10;
    let scenario =
        Scenario::new(config, EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } });
    let ppo = tiny_ppo(2);
    let a = train_scenario(&scenario, ppo.clone(), 2, 9, false).unwrap();
    let b = train_scenario(&scenario, ppo, 2, 9, false).unwrap();
    assert_eq!(
        a.checkpoint.to_json(),
        b.checkpoint.to_json(),
        "checkpoints must be bit-identical for a fixed (scenario, config, seed, worker count)"
    );
}

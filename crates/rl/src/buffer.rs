//! Rollout storage and generalized advantage estimation (GAE).
//!
//! PPO collects a fixed-size batch of transitions, then computes
//! advantages with GAE(λ) (Schulman et al. 2016). The paper trains with
//! `λ_RL = 1` (Table 2), i.e. plain discounted Monte-Carlo advantages, but
//! the implementation supports the full `λ ∈ [0, 1]` range and is tested
//! against hand-computed values at both ends.

/// One batch of experience plus derived training targets.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    /// Observations, one row per step.
    pub obs: Vec<Vec<f64>>,
    /// Sampled actions.
    pub actions: Vec<Vec<f64>>,
    /// Behaviour log-probabilities at sampling time.
    pub log_probs: Vec<f64>,
    /// Behaviour policy means at sampling time (for the exact-KL penalty).
    pub means: Vec<Vec<f64>>,
    /// Behaviour log-std vector shared by every sample of the batch (PPO
    /// snapshots the Gaussian head once per iteration).
    pub behaviour_log_std: Vec<f64>,
    /// Rewards.
    pub rewards: Vec<f64>,
    /// Value predictions at sampling time.
    pub values: Vec<f64>,
    /// Episode-termination flags (true if the episode ended AT this step).
    pub dones: Vec<bool>,
    /// Bootstrap value of the observation after the final stored step
    /// (0 if that step terminated an episode).
    pub last_value: f64,
    /// GAE advantages (filled by [`RolloutBuffer::compute_gae`]).
    pub advantages: Vec<f64>,
    /// Value-function regression targets (advantage + value).
    pub returns: Vec<f64>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// `true` iff no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// Appends one transition.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        obs: Vec<f64>,
        action: Vec<f64>,
        log_prob: f64,
        mean: Vec<f64>,
        reward: f64,
        value: f64,
        done: bool,
    ) {
        self.obs.push(obs);
        self.actions.push(action);
        self.log_probs.push(log_prob);
        self.means.push(mean);
        self.rewards.push(reward);
        self.values.push(value);
        self.dones.push(done);
    }

    /// Computes GAE(λ) advantages and value targets in place.
    ///
    /// `δ_t = r_t + γ·V(s_{t+1})·(1−done_t) − V(s_t)`;
    /// `A_t = δ_t + γλ·(1−done_t)·A_{t+1}`.
    pub fn compute_gae(&mut self, gamma: f64, lam: f64) {
        let n = self.len();
        self.advantages = vec![0.0; n];
        self.returns = vec![0.0; n];
        let mut next_adv = 0.0;
        let mut next_value = self.last_value;
        for t in (0..n).rev() {
            let nonterminal = if self.dones[t] { 0.0 } else { 1.0 };
            let delta = self.rewards[t] + gamma * next_value * nonterminal - self.values[t];
            next_adv = delta + gamma * lam * nonterminal * next_adv;
            self.advantages[t] = next_adv;
            self.returns[t] = next_adv + self.values[t];
            next_value = self.values[t];
        }
    }

    /// Normalizes advantages to zero mean / unit variance (the standard
    /// PPO stabilizer; no-op for a single sample).
    pub fn normalize_advantages(&mut self) {
        let n = self.advantages.len();
        if n < 2 {
            return;
        }
        let mean: f64 = self.advantages.iter().sum::<f64>() / n as f64;
        let var: f64 = self.advantages.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-8);
        for a in &mut self.advantages {
            *a = (*a - mean) / std;
        }
    }

    /// Truncates the buffer to its first `n` transitions (no-op if it
    /// already holds at most `n`). The caller is responsible for refreshing
    /// [`RolloutBuffer::last_value`] to the value of the observation that
    /// followed the new final step before computing GAE.
    pub fn truncate(&mut self, n: usize) {
        self.obs.truncate(n);
        self.actions.truncate(n);
        self.log_probs.truncate(n);
        self.means.truncate(n);
        self.rewards.truncate(n);
        self.values.truncate(n);
        self.dones.truncate(n);
        self.advantages.truncate(n);
        self.returns.truncate(n);
    }

    /// Clears all storage for reuse.
    pub fn clear(&mut self) {
        self.obs.clear();
        self.actions.clear();
        self.log_probs.clear();
        self.means.clear();
        self.behaviour_log_std.clear();
        self.rewards.clear();
        self.values.clear();
        self.dones.clear();
        self.advantages.clear();
        self.returns.clear();
        self.last_value = 0.0;
    }

    /// Merges another buffer's transitions into this one (parallel worker
    /// shards; GAE must already have been computed per shard since episode
    /// boundaries are per-worker).
    pub fn merge(&mut self, other: RolloutBuffer) {
        self.obs.extend(other.obs);
        self.actions.extend(other.actions);
        self.log_probs.extend(other.log_probs);
        self.means.extend(other.means);
        if self.behaviour_log_std.is_empty() {
            self.behaviour_log_std = other.behaviour_log_std;
        } else {
            debug_assert_eq!(self.behaviour_log_std, other.behaviour_log_std);
        }
        self.rewards.extend(other.rewards);
        self.values.extend(other.values);
        self.dones.extend(other.dones);
        self.advantages.extend(other.advantages);
        self.returns.extend(other.returns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_buffer(
        rewards: &[f64],
        values: &[f64],
        dones: &[bool],
        last_value: f64,
    ) -> RolloutBuffer {
        let mut b = RolloutBuffer::new();
        for i in 0..rewards.len() {
            b.push(vec![0.0], vec![0.0], 0.0, vec![0.0], rewards[i], values[i], dones[i]);
        }
        b.last_value = last_value;
        b
    }

    #[test]
    fn gae_lambda_zero_is_one_step_td() {
        // λ=0: A_t = δ_t exactly.
        let mut b = simple_buffer(&[1.0, 2.0], &[0.5, 0.25], &[false, false], 0.125);
        b.compute_gae(0.9, 0.0);
        let d0 = 1.0 + 0.9 * 0.25 - 0.5;
        let d1 = 2.0 + 0.9 * 0.125 - 0.25;
        assert!((b.advantages[0] - d0).abs() < 1e-12);
        assert!((b.advantages[1] - d1).abs() < 1e-12);
    }

    #[test]
    fn gae_lambda_one_is_discounted_monte_carlo() {
        // λ=1, terminal episode: A_t = Σ γ^k r_{t+k} − V(s_t) (Table 2's
        // setting).
        let mut b = simple_buffer(&[1.0, 1.0, 1.0], &[0.2, 0.3, 0.4], &[false, false, true], 99.0);
        let g = 0.5;
        b.compute_gae(g, 1.0);
        let ret2 = 1.0;
        let ret1 = 1.0 + g * ret2;
        let ret0 = 1.0 + g * ret1;
        assert!((b.advantages[0] - (ret0 - 0.2)).abs() < 1e-12);
        assert!((b.advantages[1] - (ret1 - 0.3)).abs() < 1e-12);
        assert!((b.advantages[2] - (ret2 - 0.4)).abs() < 1e-12);
        // last_value must be ignored after a terminal step.
        assert!((b.returns[2] - ret2).abs() < 1e-12);
    }

    #[test]
    fn done_resets_propagation_mid_batch() {
        let mut b = simple_buffer(&[1.0, 5.0], &[0.0, 0.0], &[true, false], 2.0);
        b.compute_gae(0.9, 1.0);
        // Step 0 terminated: advantage sees only its own reward.
        assert!((b.advantages[0] - 1.0).abs() < 1e-12);
        // Step 1 bootstraps from last_value.
        assert!((b.advantages[1] - (5.0 + 0.9 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn normalization_zero_mean_unit_std() {
        let mut b =
            simple_buffer(&[1.0, 2.0, 3.0, 4.0], &[0.0; 4], &[false, false, false, true], 0.0);
        b.compute_gae(1.0, 1.0);
        b.normalize_advantages();
        let mean: f64 = b.advantages.iter().sum::<f64>() / 4.0;
        let var: f64 = b.advantages.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = simple_buffer(&[1.0], &[0.0], &[true], 0.0);
        a.compute_gae(0.9, 1.0);
        let mut b = simple_buffer(&[2.0], &[0.0], &[true], 0.0);
        b.compute_gae(0.9, 1.0);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.advantages.len(), 2);
    }
}

//! The DP oracle bridge: exact optimality certificates for scenarios.
//!
//! The `mflb-dp` crate solves the discretized mean-field control MDP
//! exactly (up to lattice resolution and a finite softmin action family);
//! this module connects that solver to the scenario/eval pipeline so a
//! trained checkpoint can be certified against the model-based optimum
//! instead of merely "beats RND":
//!
//! * [`oracle_exactness`] classifies a [`Scenario`]: for every engine
//!   whose mean-field limit *is* the homogeneous Eq. 20–31 model
//!   (Aggregate, PerClient, Staggered, JobLevel, full-mesh Graph) the DP
//!   optimum is **exact**; phase-type service and finite-neighborhood
//!   graphs get a mean-matched homogeneous **reference** (clearly
//!   labelled); heterogeneous pools are rejected — their composite rule
//!   space is outside the DP action library.
//! * [`solve_oracle`] solves (or loads from a content-keyed cache) the
//!   discretized MDP and wraps the greedy [`GridPolicy`] as an evaluable
//!   policy named `MF-DP (oracle)`.
//! * Solutions are cached as [`mflb_dp::DpCheckpoint`] JSON under
//!   `oracle_<key>.json`, where the key is an FNV-1a hash of exactly the
//!   fields the discretized MDP depends on (Δt, service rate, arrivals,
//!   `d`, buffer, γ, holding cost) plus the grid resolution — so an eval
//!   re-run, an `M` sweep or a renamed scenario file all hit the cache,
//!   while any dynamics change forces a fresh solve.
//!
//! Cost grows combinatorially in the buffer size: the lattice has
//! `C(G + B, B)` points. [`OracleConfig::max_table_entries`] refuses
//! infeasible solves with a readable message before any allocation.

use mflb_dp::{ActionLibrary, DpConfig, DpSolution, GridPolicy};
use mflb_queue::mmpp::ArrivalProcess;
use mflb_sim::{EngineSpec, Scenario};
use serde::Serialize;
use std::path::PathBuf;

/// How faithfully the DP optimum describes a scenario's true optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleExactness {
    /// The scenario's mean-field limit is the homogeneous model the DP
    /// solves: the oracle is exact up to lattice resolution and the
    /// softmin action family.
    Exact,
    /// The DP solves a mean-matched homogeneous stand-in (phase-type
    /// service reduced to its mean rate, or a finite-neighborhood graph
    /// treated as full-mesh): gaps are indicative, not certificates.
    Reference {
        /// Human-readable description of the approximation.
        note: String,
    },
}

impl OracleExactness {
    /// Whether the oracle is an exact certificate for the scenario.
    pub fn is_exact(&self) -> bool {
        matches!(self, OracleExactness::Exact)
    }

    /// The approximation note (empty for exact oracles).
    pub fn note(&self) -> &str {
        match self {
            OracleExactness::Exact => "",
            OracleExactness::Reference { note } => note,
        }
    }
}

/// Configuration of an oracle solve.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Simplex lattice resolution `G` (probabilities are multiples of
    /// `1/G`). The default of 8 keeps quick-scale solves in seconds at
    /// the paper's `B = 5`.
    pub grid_resolution: usize,
    /// Sup-norm convergence tolerance of the value iteration.
    pub tol: f64,
    /// Hard cap on value-iteration sweeps.
    pub max_sweeps: usize,
    /// Worker threads for the transition precompute (0 → all cores).
    pub threads: usize,
    /// Refuse solves whose transition table would exceed this many
    /// `(lattice point, level, action)` entries — the readable-error
    /// guard against oversized buffers or resolutions.
    pub max_table_entries: u64,
    /// Directory for `oracle_<key>.json` checkpoint caching; `None`
    /// disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            grid_resolution: 8,
            tol: 1e-6,
            max_sweeps: 4_000,
            threads: 0,
            max_table_entries: 2_000_000,
            cache_dir: None,
        }
    }
}

/// A solved oracle: the greedy DP policy plus its provenance.
pub struct Oracle {
    /// The greedy DP policy, named `MF-DP (oracle)`.
    pub policy: GridPolicy,
    /// Exact certificate or mean-matched reference.
    pub exactness: OracleExactness,
    /// Whether the solution came from the checkpoint cache.
    pub cache_hit: bool,
    /// Lattice resolution used.
    pub grid_resolution: usize,
    /// Value-iteration sweeps the solver used (0 when loaded from cache
    /// metadata that recorded it; always the stored count).
    pub sweeps: usize,
    /// Final sup-norm residual of the solve.
    pub residual: f64,
    /// The content key the cache file is named by.
    pub key: String,
}

impl Oracle {
    /// Recomputes the Bellman residual from the model over every
    /// `stride`-th lattice state and returns the maximum — the
    /// self-check that fails loudly if a (possibly cached) solution has
    /// not actually converged.
    pub fn max_bellman_residual(&self, stride: usize) -> f64 {
        let sol = self.policy.solution();
        let stride = stride.max(1);
        let mut worst = 0.0f64;
        for s in (0..sol.grid().num_points()).step_by(stride) {
            for l in 0..sol.num_levels() {
                worst = worst.max(sol.bellman_residual_at(s, l));
            }
        }
        worst
    }
}

/// Classifies how well the DP oracle describes a scenario, or rejects
/// scenarios the oracle cannot model at all.
pub fn oracle_exactness(scenario: &Scenario) -> Result<OracleExactness, String> {
    match &scenario.engine {
        EngineSpec::PerClient
        | EngineSpec::Aggregate
        | EngineSpec::Staggered { .. }
        | EngineSpec::JobLevel => Ok(OracleExactness::Exact),
        EngineSpec::Graph { topology, .. } => match topology.limit_neighborhood_size() {
            None => Ok(OracleExactness::Exact),
            Some(k) => Ok(OracleExactness::Reference {
                note: format!(
                    "finite neighborhood (k = {k}) treated as full-mesh; \
                     gaps are indicative, not certificates"
                ),
            }),
        },
        EngineSpec::Ph { service } => {
            let law = service.build()?;
            let mean = law.mean();
            if law.num_phases() == 1 {
                // A single exponential phase *is* the homogeneous model.
                Ok(OracleExactness::Exact)
            } else {
                Ok(OracleExactness::Reference {
                    note: format!(
                        "phase-type service mean-matched to an exponential rate \
                         {:.4}; gaps are indicative, not certificates",
                        1.0 / mean
                    ),
                })
            }
        }
        EngineSpec::Event { job_size } => {
            let mean = job_size.mean();
            if !mean.is_finite() {
                return Err(format!(
                    "event job sizes have infinite mean ({job_size:?}); no mean-matched \
                     exponential model exists — use shape > 1 or a bounded law"
                ));
            }
            if matches!(job_size, mflb_core::JobSizeLaw::Exponential { .. }) {
                // Exponential sizes over exponential servers: the length
                // process is the homogeneous M/M/1/B in law.
                Ok(OracleExactness::Exact)
            } else {
                Ok(OracleExactness::Reference {
                    note: format!(
                        "heavy-tailed job sizes mean-matched to an exponential service \
                         rate {:.4}; gaps are indicative, not certificates",
                        scenario.config.service_rate / mean
                    ),
                })
            }
        }
        EngineSpec::Hetero { .. } => {
            Err("the DP oracle does not support heterogeneous pools: its softmin action \
             library is over plain length states, not composite (length, class) states"
                .into())
        }
    }
}

/// The homogeneous `SystemConfig` the oracle solves for a scenario:
/// identical to the scenario's except that phase-type service is replaced
/// by its mean-matched exponential rate.
pub fn oracle_mdp_config(scenario: &Scenario) -> Result<mflb_core::SystemConfig, String> {
    let mut config = scenario.config.clone();
    match &scenario.engine {
        EngineSpec::Ph { service } => {
            let mean = service.build()?.mean();
            if !(mean > 0.0 && mean.is_finite()) {
                return Err(format!("phase-type service has unusable mean {mean}"));
            }
            config.service_rate = 1.0 / mean;
        }
        EngineSpec::Event { job_size } => {
            // A server of rate α completes mean-size jobs at rate α/mean.
            let mean = job_size.mean();
            if !(mean > 0.0 && mean.is_finite()) {
                return Err(format!("event job sizes have unusable mean {mean}"));
            }
            config.service_rate /= mean;
        }
        _ => {}
    }
    Ok(config)
}

/// Number of `(lattice point, level, action)` transition-table entries an
/// oracle solve would precompute, or `None` on overflow.
fn table_entries(num_states: usize, grid: usize, levels: usize, actions: usize) -> Option<u64> {
    // C(grid + num_states - 1, num_states - 1) with overflow-checked
    // arithmetic (the count can exceed u64 long before SimplexGrid would
    // get a chance to panic on allocation).
    let mut points: u64 = 1;
    for i in 1..num_states {
        points = points.checked_mul((grid + i) as u64)? / i as u64;
    }
    points.checked_mul(levels as u64)?.checked_mul(actions as u64)
}

/// Pre-flight feasibility check: classifies the scenario and verifies the
/// solve fits [`OracleConfig::max_table_entries`]. Returns the exactness
/// class so callers can check *before* spending minutes in the solver —
/// the CLI turns an `Err` here into a usage error (exit 2).
pub fn oracle_feasibility(
    scenario: &Scenario,
    oracle: &OracleConfig,
) -> Result<OracleExactness, String> {
    scenario.validate()?;
    let exactness = oracle_exactness(scenario)?;
    if oracle.grid_resolution == 0 {
        return Err("oracle grid resolution must be at least 1".into());
    }
    let config = oracle_mdp_config(scenario)?;
    let zs = config.num_states();
    let actions = ActionLibrary::softmin_default(zs, config.d).len();
    let levels = config.arrivals.num_levels();
    let entries = table_entries(zs, oracle.grid_resolution, levels, actions);
    match entries {
        Some(n) if n <= oracle.max_table_entries => Ok(exactness),
        _ => {
            let shown = entries.map_or("more than 2^64".to_string(), |n| n.to_string());
            Err(format!(
                "oracle solve infeasible: buffer {} at grid resolution {} needs {} \
                 transition-table entries (cap {}); lower --oracle-grid or use a \
                 smaller buffer",
                config.buffer, oracle.grid_resolution, shown, oracle.max_table_entries
            ))
        }
    }
}

/// The MDP-relevant fields the cache key hashes: everything the
/// discretized solve depends on, and nothing it does not (system sizes,
/// horizons and ν₀ are deliberately absent — the value function covers
/// the whole lattice).
#[derive(Serialize)]
struct MdpSignature {
    dt: f64,
    service_rate: f64,
    arrivals: ArrivalProcess,
    d: usize,
    buffer: usize,
    gamma: f64,
    holding_cost: f64,
    grid_resolution: usize,
    action_library: String,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content key of an oracle solve: FNV-1a 64 over the canonical JSON of
/// the MDP-relevant configuration fields plus grid resolution and action
/// library tag, rendered as 16 hex digits.
pub fn scenario_oracle_key(config: &mflb_core::SystemConfig, grid_resolution: usize) -> String {
    let sig = MdpSignature {
        dt: config.dt,
        service_rate: config.service_rate,
        arrivals: config.arrivals.clone(),
        d: config.d,
        buffer: config.buffer,
        gamma: config.gamma,
        holding_cost: config.holding_cost,
        grid_resolution,
        action_library: "softmin_default".to_string(),
    };
    let json = serde_json::to_string(&sig).expect("signature serialization cannot fail");
    format!("{:016x}", fnv1a64(json.as_bytes()))
}

/// Whether a cached solution actually answers this solve request (guards
/// against hash collisions and hand-edited cache files).
fn cache_entry_matches(
    sol: &DpSolution,
    config: &mflb_core::SystemConfig,
    oracle: &OracleConfig,
) -> bool {
    sol.grid().resolution() == oracle.grid_resolution
        && sol.config().dt == config.dt
        && sol.config().service_rate == config.service_rate
        && sol.config().d == config.d
        && sol.config().buffer == config.buffer
        && sol.config().gamma == config.gamma
        && sol.config().holding_cost == config.holding_cost
        && sol.config().arrivals == config.arrivals
        && sol.actions().len()
            == ActionLibrary::softmin_default(config.num_states(), config.d).len()
}

/// Solves (or loads from cache) the discretized MDP for a scenario and
/// wraps the greedy policy for evaluation.
///
/// Fails with a readable message — never a panic — on unsupported
/// engines, oversized solves, or malformed scenarios. Cache misses and
/// unreadable/mismatched cache files fall through to a fresh solve; cache
/// writes are best-effort (an unwritable cache directory costs time, not
/// correctness).
pub fn solve_oracle(scenario: &Scenario, oracle: &OracleConfig) -> Result<Oracle, String> {
    let exactness = oracle_feasibility(scenario, oracle)?;
    let config = oracle_mdp_config(scenario)?;
    let key = scenario_oracle_key(&config, oracle.grid_resolution);

    let cache_path = oracle.cache_dir.as_ref().map(|dir| dir.join(format!("oracle_{key}.json")));
    if let Some(path) = &cache_path {
        if let Ok(sol) = DpSolution::load_json(path) {
            if cache_entry_matches(&sol, &config, oracle) {
                let (sweeps, residual) = (sol.sweeps, sol.residual);
                return Ok(Oracle {
                    policy: sol.into_policy().with_name("MF-DP (oracle)"),
                    exactness,
                    cache_hit: true,
                    grid_resolution: oracle.grid_resolution,
                    sweeps,
                    residual,
                    key,
                });
            }
        }
    }

    let library = ActionLibrary::softmin_default(config.num_states(), config.d);
    let dp = DpConfig {
        grid_resolution: oracle.grid_resolution,
        tol: oracle.tol,
        max_sweeps: oracle.max_sweeps,
        threads: oracle.threads,
    };
    let sol = DpSolution::solve(&config, library, &dp);
    if sol.residual > oracle.tol {
        return Err(format!(
            "oracle value iteration did not converge: residual {} after {} sweeps \
             (tol {}); raise --oracle-sweeps or loosen the tolerance",
            sol.residual, sol.sweeps, oracle.tol
        ));
    }

    if let Some(path) = &cache_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = sol.save_json(path);
    }

    let (sweeps, residual) = (sol.sweeps, sol.residual);
    Ok(Oracle {
        policy: sol.into_policy().with_name("MF-DP (oracle)"),
        exactness,
        cache_hit: false,
        grid_resolution: oracle.grid_resolution,
        sweeps,
        residual,
        key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_core::mdp::UpperPolicy;
    use mflb_core::{SystemConfig, Topology};
    use mflb_sim::ServiceLaw;

    fn tiny_scenario() -> Scenario {
        let mut config = SystemConfig::paper().with_size(100, 10).with_buffer(2).with_dt(5.0);
        config.eval_time = 100.0;
        Scenario::new(config, EngineSpec::Aggregate)
    }

    fn tiny_oracle() -> OracleConfig {
        OracleConfig { grid_resolution: 4, ..OracleConfig::default() }
    }

    #[test]
    fn exactness_taxonomy_covers_every_engine_kind() {
        let base = tiny_scenario();
        let with = |engine: EngineSpec| Scenario::new(base.config.clone(), engine);
        assert!(oracle_exactness(&with(EngineSpec::Aggregate)).unwrap().is_exact());
        assert!(oracle_exactness(&with(EngineSpec::PerClient)).unwrap().is_exact());
        assert!(oracle_exactness(&with(EngineSpec::JobLevel)).unwrap().is_exact());
        assert!(oracle_exactness(&with(EngineSpec::Staggered { cohorts: 4 })).unwrap().is_exact());
        assert!(oracle_exactness(&with(EngineSpec::Graph {
            topology: Topology::FullMesh,
            shard_size: None
        }))
        .unwrap()
        .is_exact());
        let ring = oracle_exactness(&with(EngineSpec::Graph {
            topology: Topology::Ring { radius: 2 },
            shard_size: None,
        }))
        .unwrap();
        assert!(!ring.is_exact());
        assert!(ring.note().contains("full-mesh"), "{}", ring.note());
        let exp = oracle_exactness(&with(EngineSpec::Ph {
            service: ServiceLaw::Exponential { rate: 1.0 },
        }))
        .unwrap();
        assert!(exp.is_exact(), "single-phase exponential is the homogeneous model");
        let erlang = oracle_exactness(&with(EngineSpec::Ph {
            service: ServiceLaw::Erlang { k: 2, rate: 2.0 },
        }))
        .unwrap();
        assert!(!erlang.is_exact());
        assert!(erlang.note().contains("mean-matched"), "{}", erlang.note());
        let hetero = oracle_exactness(&with(EngineSpec::Hetero { rates: vec![1.0; 10] }));
        assert!(hetero.is_err());
        assert!(hetero.unwrap_err().contains("heterogeneous"), "readable rejection");
        let event_exp = oracle_exactness(&with(EngineSpec::Event {
            job_size: mflb_core::JobSizeLaw::Exponential { rate: 1.0 },
        }))
        .unwrap();
        assert!(event_exp.is_exact(), "exponential sizes are the homogeneous model in law");
        let event_bp = oracle_exactness(&with(EngineSpec::Event {
            job_size: mflb_core::JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.5, hi: 50.0 },
        }))
        .unwrap();
        assert!(!event_bp.is_exact());
        assert!(event_bp.note().contains("mean-matched"), "{}", event_bp.note());
        let event_inf = oracle_exactness(&with(EngineSpec::Event {
            job_size: mflb_core::JobSizeLaw::Pareto { shape: 0.8, scale: 1.0 },
        }));
        assert!(event_inf.is_err());
        assert!(event_inf.unwrap_err().contains("infinite mean"), "readable rejection");
    }

    #[test]
    fn mean_matched_config_inverts_the_service_mean() {
        // Erlang-2 with per-phase rate 2 has mean 1 → rate 1.
        let scenario = Scenario::new(
            tiny_scenario().config,
            EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
        );
        let config = oracle_mdp_config(&scenario).unwrap();
        assert!((config.service_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_rejects_oversized_grids_with_a_readable_message() {
        let scenario = tiny_scenario();
        let huge = OracleConfig { grid_resolution: 100_000, ..OracleConfig::default() };
        let err = oracle_feasibility(&scenario, &huge).unwrap_err();
        assert!(err.contains("--oracle-grid"), "must tell the user the fix: {err}");
        assert!(oracle_feasibility(&scenario, &tiny_oracle()).is_ok());
    }

    #[test]
    fn cache_key_tracks_dynamics_but_not_system_size() {
        let a = tiny_scenario().config;
        let mut b = a.clone().with_size(10_000, 100);
        b.eval_time = 900.0;
        assert_eq!(
            scenario_oracle_key(&a, 4),
            scenario_oracle_key(&b, 4),
            "M/N/horizon sweeps must share the cache entry"
        );
        let c = a.clone().with_dt(2.0);
        assert_ne!(scenario_oracle_key(&a, 4), scenario_oracle_key(&c, 4), "dynamics change");
        assert_ne!(scenario_oracle_key(&a, 4), scenario_oracle_key(&a, 6), "resolution change");
    }

    #[test]
    fn solve_then_cache_hit_roundtrip() {
        let dir = std::env::temp_dir().join("mflb_oracle_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = tiny_scenario();
        let oracle = OracleConfig { cache_dir: Some(dir.clone()), ..tiny_oracle() };
        let first = solve_oracle(&scenario, &oracle).unwrap();
        assert!(!first.cache_hit);
        assert!(first.exactness.is_exact());
        assert_eq!(first.policy.name(), "MF-DP (oracle)");
        assert!(
            dir.join(format!("oracle_{}.json", first.key)).exists(),
            "solution must be cached on disk"
        );
        let second = solve_oracle(&scenario, &oracle).unwrap();
        assert!(second.cache_hit, "second solve must come from the cache");
        assert_eq!(first.sweeps, second.sweeps);
        assert_eq!(first.residual, second.residual);
        // The cached policy decides identically.
        let nu = mflb_core::StateDist::uniform(scenario.config.buffer);
        for l in 0..scenario.config.arrivals.num_levels() {
            assert_eq!(
                first.policy.solution().greedy_action(&nu, l),
                second.policy.solution().greedy_action(&nu, l)
            );
        }
        // The self-check sees a converged solution either way.
        assert!(second.max_bellman_residual(7) < 1e-5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_fall_through_to_a_fresh_solve() {
        let dir = std::env::temp_dir().join("mflb_oracle_corrupt_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let scenario = tiny_scenario();
        let oracle = OracleConfig { cache_dir: Some(dir.clone()), ..tiny_oracle() };
        let key = scenario_oracle_key(&oracle_mdp_config(&scenario).unwrap(), 4);
        std::fs::write(dir.join(format!("oracle_{key}.json")), "{ not json").unwrap();
        let solved = solve_oracle(&scenario, &oracle).unwrap();
        assert!(!solved.cache_hit, "corrupt cache must not be trusted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncached_solve_works_without_a_cache_dir() {
        let solved = solve_oracle(&tiny_scenario(), &tiny_oracle()).unwrap();
        assert!(!solved.cache_hit);
        assert!(solved.residual <= tiny_oracle().tol);
    }
}

//! Proximal Policy Optimization (Schulman et al. 2017), hand-rolled.
//!
//! Matches the paper's RLlib setup (Table 2): clipped surrogate objective
//! *plus* an adaptive KL penalty, GAE(λ) advantages, tanh MLPs for policy
//! and value, diagonal Gaussian actions with state-independent log-stds,
//! minibatch Adam. Rollouts are collected by parallel workers (crossbeam
//! scoped threads), mirroring the paper's 20-core training.
//!
//! # Rollout determinism
//!
//! Rollout collection is **episode-indexed**: every episode `e` (a global,
//! monotonically increasing counter) draws all of its randomness from an RNG
//! seeded by `(training seed, e)`, workers pull episode indices from a shared
//! atomic counter, and the collected episodes are merged back **in episode
//! order**. The content of a rollout batch therefore depends only on the
//! seed and the networks — *not* on [`PpoConfig::rollout_threads`] or on OS
//! scheduling — so training with 1 worker and with `k` workers produces
//! bit-identical networks (verified by `tests/training_determinism.rs`).
//!
//! Loss per minibatch sample `i` with ratio `r_i = exp(lnπ(a|s) − lnπ_old)`:
//!
//! ```text
//! L_i = −min(r_i·Â_i, clip(r_i, 1±ε)·Â_i) + c_KL·KL(π_old‖π) − c_H·H(π)
//! ```
//!
//! with `c_KL` adapted towards a KL target as in RLlib.

use crate::buffer::RolloutBuffer;
use crate::env::Env;
use mflb_nn::{clip_grad_norm, Activation, Adam, DiagGaussian, Mlp, Tensor, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// PPO hyper-parameters. [`PpoConfig::paper`] reproduces Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Clip parameter ε.
    pub clip: f64,
    /// Initial KL penalty coefficient β.
    pub kl_coeff: f64,
    /// KL target for the adaptive coefficient (RLlib default 0.01).
    pub kl_target: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Environment steps collected per iteration.
    pub train_batch_size: usize,
    /// SGD minibatch size.
    pub minibatch_size: usize,
    /// SGD epochs per iteration.
    pub num_epochs: usize,
    /// Entropy bonus coefficient (RLlib default 0).
    pub entropy_coeff: f64,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// Initial `log σ` of the Gaussian head.
    pub initial_log_std: f64,
    /// Hidden layer widths of both networks.
    pub hidden: Vec<usize>,
    /// Number of parallel rollout worker threads. Purely a throughput
    /// knob: collected batches are identical for every value (see the
    /// module docs on rollout determinism).
    pub rollout_threads: usize,
}

impl PpoConfig {
    /// Table 2 of the paper: γ=0.99, λ_RL=1, KL coeff 0.2, clip 0.3,
    /// lr 5·10⁻⁵, batch 4000, minibatch 128, 30 epochs; 2×256 tanh nets.
    pub fn paper() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 1.0,
            clip: 0.3,
            kl_coeff: 0.2,
            kl_target: 0.01,
            lr: 5e-5,
            train_batch_size: 4000,
            minibatch_size: 128,
            num_epochs: 30,
            entropy_coeff: 0.0,
            grad_clip: 10.0,
            initial_log_std: 0.0,
            hidden: vec![256, 256],
            rollout_threads: 1,
        }
    }

    /// A reduced configuration for CI-scale smoke training: smaller nets,
    /// batches and epoch counts, higher learning rate.
    pub fn quick() -> Self {
        Self {
            lr: 3e-4,
            train_batch_size: 1024,
            minibatch_size: 128,
            num_epochs: 8,
            hidden: vec![64, 64],
            ..Self::paper()
        }
    }
}

/// Per-iteration training statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration counter (1-based after the first call).
    pub iteration: u64,
    /// Cumulative environment steps.
    pub total_steps: u64,
    /// Episodes completed during this iteration's rollouts.
    pub episodes_completed: usize,
    /// Mean return of those episodes (NaN if none completed).
    pub mean_episode_return: f64,
    /// Mean surrogate policy loss over the last epoch.
    pub policy_loss: f64,
    /// Mean value loss over the last epoch.
    pub value_loss: f64,
    /// Mean KL(π_old‖π) over the last epoch.
    pub mean_kl: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Current (post-adaptation) KL coefficient.
    pub kl_coeff: f64,
}

/// Statistics of one rollout-collection phase ([`PpoTrainer::collect_batch`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectStats {
    /// Episodes that terminated inside the collected steps.
    pub episodes_completed: usize,
    /// Mean return of those episodes (NaN if none completed).
    pub mean_episode_return: f64,
}

/// Statistics of one minibatch-SGD phase ([`PpoTrainer::update`]): the
/// last epoch's per-minibatch means.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean surrogate policy loss.
    pub policy_loss: f64,
    /// Mean value loss.
    pub value_loss: f64,
    /// Mean KL(π_old‖π).
    pub mean_kl: f64,
    /// Mean policy entropy.
    pub entropy: f64,
}

/// Per-worker inference scratch: the policy and value [`Workspace`]s a
/// rollout worker reuses for every step of every episode it collects.
#[derive(Default)]
struct RolloutScratch {
    policy: Workspace,
    value: Workspace,
}

/// Long-lived scratch for the minibatch loop: gather buffers, network
/// workspaces (whose flat-gradient tails hold the `log_std` gradients for
/// joint norm clipping) and the per-sample Gaussian gradient slices. All
/// buffers are reshaped in place per minibatch, so one warmed-up
/// [`PpoTrainer::update`] call performs O(1) heap allocations (verified by
/// `tests/update_allocations.rs`).
#[derive(Default)]
struct UpdateWorkspace {
    /// Shuffled sample indices (Fisher–Yates, reused across epochs).
    indices: Vec<usize>,
    /// Minibatch observation gather.
    obs: Tensor,
    /// Policy-network activations/gradients/flat-grad (+`log_std` tail).
    policy: Workspace,
    /// Value-network activations/gradients/flat-grad.
    value: Workspace,
    /// `∂L/∂μ` per minibatch row.
    grad_mean: Tensor,
    /// `∂L/∂log_std` accumulator.
    grad_log_std: Vec<f64>,
    /// Value-head output gradient.
    vgrad: Tensor,
    /// Scratch for [`DiagGaussian::log_prob_grad_mean_into`].
    glp_mean: Vec<f64>,
    /// Scratch for [`DiagGaussian::log_prob_grad_log_std_into`].
    glp_log_std: Vec<f64>,
}

/// One collected episode, tagged with its global index so shards can be
/// merged deterministically regardless of which worker produced them.
struct EpisodeShard {
    index: u64,
    buf: RolloutBuffer,
    /// The episode terminated inside the collected steps (as opposed to
    /// hitting the per-episode step cap).
    done: bool,
    episode_return: f64,
}

/// Derives the pinned RNG for episode `index` — the same SplitMix64
/// construction (and code) as `mflb_sim`'s per-run Monte-Carlo seeds.
fn episode_rng(seed: u64, index: u64) -> StdRng {
    mflb_sim::run_rng(seed, index)
}

/// The PPO trainer: owns policy network, Gaussian head, value network,
/// optimizers and the rollout-environment prototype.
pub struct PpoTrainer {
    cfg: PpoConfig,
    policy: Mlp,
    log_std: Vec<f64>,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    kl_coeff: f64,
    proto: Box<dyn Env>,
    seed: u64,
    /// Global episode counter: episode `e` always uses [`episode_rng`]
    /// stream `(seed, e)`, across iterations.
    episodes_started: u64,
    total_steps: u64,
    iteration: u64,
    /// Long-lived minibatch scratch (see [`UpdateWorkspace`]).
    ws: UpdateWorkspace,
}

impl PpoTrainer {
    /// Creates a trainer for environments shaped like `prototype`.
    pub fn new(prototype: &dyn Env, cfg: PpoConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let obs_dim = prototype.obs_dim();
        let act_dim = prototype.act_dim();

        let mut policy_sizes = vec![obs_dim];
        policy_sizes.extend_from_slice(&cfg.hidden);
        policy_sizes.push(act_dim);
        let mut policy = Mlp::new(&policy_sizes, Activation::Tanh, &mut rng);
        // Near-uniform initial policy (standard PPO practice; also what the
        // softmax decision-rule decoding wants at iteration 0).
        {
            let mut p = policy.params_vec();
            let n_last = policy_sizes[policy_sizes.len() - 2] * act_dim + act_dim;
            let start = p.len() - n_last;
            for v in &mut p[start..] {
                *v *= 0.01;
            }
            policy.read_params(&p);
        }

        let mut value_sizes = vec![obs_dim];
        value_sizes.extend_from_slice(&cfg.hidden);
        value_sizes.push(1);
        let value = Mlp::new(&value_sizes, Activation::Tanh, &mut rng);

        let log_std = vec![cfg.initial_log_std; act_dim];
        let opt_policy = Adam::new(policy.num_params() + act_dim, cfg.lr);
        let opt_value = Adam::new(value.num_params(), cfg.lr);

        Self {
            kl_coeff: cfg.kl_coeff,
            cfg,
            policy,
            log_std,
            value,
            opt_policy,
            opt_value,
            proto: prototype.boxed_clone(),
            seed,
            episodes_started: 0,
            total_steps: 0,
            iteration: 0,
            ws: UpdateWorkspace {
                policy: Workspace::new().with_grad_tail(act_dim),
                ..UpdateWorkspace::default()
            },
        }
    }

    /// The policy network (deterministic head = decision-rule logits).
    pub fn policy_net(&self) -> &Mlp {
        &self.policy
    }

    /// Warm-starts the policy network from an existing one (same shape),
    /// e.g. a previously saved checkpoint. The Adam moments are reset; the
    /// value network keeps its fresh initialization and re-fits within the
    /// first few iterations.
    pub fn load_policy_net(&mut self, net: &Mlp) {
        assert_eq!(net.input_dim(), self.policy.input_dim(), "input dim mismatch");
        assert_eq!(net.output_dim(), self.policy.output_dim(), "output dim mismatch");
        assert_eq!(net.num_params(), self.policy.num_params(), "hidden shape mismatch");
        self.policy = net.clone();
        self.opt_policy = Adam::new(self.policy.num_params() + self.log_std.len(), self.cfg.lr);
    }

    /// The value network.
    pub fn value_net(&self) -> &Mlp {
        &self.value
    }

    /// Current Gaussian log-stds.
    pub fn log_std(&self) -> &[f64] {
        &self.log_std
    }

    /// Cumulative environment steps.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Deterministic (mean) action for an observation.
    pub fn deterministic_action(&self, obs: &[f64]) -> Vec<f64> {
        self.policy.forward_one(obs)
    }

    /// Runs one complete episode with the pinned per-episode RNG, stopping
    /// early after `cap` steps (the bootstrap value then covers the tail).
    /// All network evaluations go through the worker's reusable `scratch`
    /// (the batch-1 `gemv` fast path) — bit-identical to the allocating
    /// `forward_one` they replace.
    // The worker protocol is clearest with the shared state spelled out
    // per argument; a params struct would only rename the list.
    #[allow(clippy::too_many_arguments)]
    fn collect_episode(
        policy: &Mlp,
        value: &Mlp,
        log_std: &[f64],
        env: &mut dyn Env,
        scratch: &mut RolloutScratch,
        seed: u64,
        index: u64,
        cap: usize,
    ) -> EpisodeShard {
        let mut rng = episode_rng(seed, index);
        let mut obs = env.reset(&mut rng);
        let mut buf = RolloutBuffer::new();
        let mut episode_return = 0.0;
        let mut done = false;
        while !done && buf.len() < cap {
            let mean = policy.forward_one_into(&obs, &mut scratch.policy).to_vec();
            let dist = DiagGaussian::new(&mean, log_std);
            let action = dist.sample(&mut rng);
            let log_prob = dist.log_prob(&action);
            let v = value.forward_one_into(&obs, &mut scratch.value)[0];
            let result = env.step(&action, &mut rng);
            episode_return += result.reward;
            done = result.done;
            buf.push(
                std::mem::replace(&mut obs, result.obs),
                action,
                log_prob,
                mean,
                result.reward,
                v,
                result.done,
            );
        }
        // Bootstrap value for a cap-truncated episode; terminated ones end
        // with value 0 by definition.
        buf.last_value =
            if done { 0.0 } else { value.forward_one_into(&obs, &mut scratch.value)[0] };
        buf.behaviour_log_std = log_std.to_vec();
        EpisodeShard { index, buf, done, episode_return }
    }

    /// Collects at least `train_batch_size` steps as whole episodes,
    /// parallel over `rollout_threads` workers, and returns the shards
    /// sorted by episode index. The episode *content* depends only on the
    /// networks and the pinned per-episode RNG streams, never on the worker
    /// count.
    fn collect_shards(&self) -> Vec<EpisodeShard> {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        let batch = self.cfg.train_batch_size;
        let n_workers = self.cfg.rollout_threads.max(1);
        let policy = &self.policy;
        let value = &self.value;
        let log_std = self.log_std.clone();
        let seed = self.seed;
        let start = self.episodes_started;

        // With a fixed-horizon environment the exact episode demand is
        // known up front; otherwise workers keep pulling indices until the
        // shared step counter crosses the batch size (the deterministic
        // prefix taken in `train_iteration` discards any overshoot).
        let fixed_demand = self.proto.horizon_hint().map(|h| batch.div_ceil(h.min(batch)) as u64);

        let next_index = AtomicU64::new(start);
        let steps_collected = AtomicU64::new(0);
        let full = AtomicBool::new(false);
        let shards: parking_lot::Mutex<Vec<EpisodeShard>> = parking_lot::Mutex::new(Vec::new());

        let worker_loop = |env: &mut dyn Env, scratch: &mut RolloutScratch| loop {
            // In the dynamic scheme the stop check must happen BEFORE an
            // index is claimed: a claimed index is always collected, so the
            // contiguous index range reaching the batch size is present in
            // full regardless of worker scheduling.
            if fixed_demand.is_none() && full.load(Ordering::Relaxed) {
                break;
            }
            let e = next_index.fetch_add(1, Ordering::Relaxed);
            if let Some(demand) = fixed_demand {
                if e >= start + demand {
                    break;
                }
            }
            let shard =
                Self::collect_episode(policy, value, &log_std, env, scratch, seed, e, batch.max(1));
            let got = steps_collected.fetch_add(shard.buf.len() as u64, Ordering::Relaxed)
                + shard.buf.len() as u64;
            shards.lock().push(shard);
            if got >= batch as u64 {
                full.store(true, Ordering::Relaxed);
            }
        };

        if n_workers == 1 {
            let mut env = self.proto.boxed_clone();
            let mut scratch = RolloutScratch::default();
            worker_loop(env.as_mut(), &mut scratch);
        } else {
            crossbeam::scope(|scope| {
                for _ in 0..n_workers {
                    let mut env = self.proto.boxed_clone();
                    let work = &worker_loop;
                    scope.spawn(move |_| {
                        let mut scratch = RolloutScratch::default();
                        work(env.as_mut(), &mut scratch)
                    });
                }
            })
            .expect("rollout scope failed");
        }

        let mut shards = shards.into_inner();
        shards.sort_by_key(|s| s.index);
        shards
    }

    /// Collects exactly `train_batch_size` steps as whole (or
    /// tail-truncated) episodes with GAE targets and normalized advantages
    /// already computed — the rollout phase of one PPO iteration, exposed
    /// separately so the perf harness can time collection and
    /// [`PpoTrainer::update`] independently.
    pub fn collect_batch(&mut self) -> (RolloutBuffer, CollectStats) {
        // --- Rollout collection (parallel, episode-indexed). ---
        let shards = self.collect_shards();

        // Deterministic prefix: take episodes in index order until the
        // batch is exactly full, truncating the last one if necessary.
        // Overshoot episodes (possible with data-dependent horizons and
        // several workers) are discarded and their indices reused next
        // iteration, so the consumed stream is worker-count-invariant.
        let batch = self.cfg.train_batch_size;
        let mut buffer = RolloutBuffer::new();
        let mut completed_returns = Vec::new();
        let mut consumed = 0u64;
        for mut shard in shards {
            let remaining = batch - buffer.len();
            if remaining == 0 {
                break;
            }
            consumed += 1;
            if shard.buf.len() > remaining {
                let bootstrap_obs = shard.buf.obs[remaining].clone();
                shard.buf.truncate(remaining);
                shard.buf.last_value = if *shard.buf.dones.last().unwrap_or(&true) {
                    0.0
                } else {
                    self.value.forward_one_into(&bootstrap_obs, &mut self.ws.value)[0]
                };
                shard.done = false;
            }
            if shard.done {
                completed_returns.push(shard.episode_return);
            }
            shard.buf.compute_gae(self.cfg.gamma, self.cfg.gae_lambda);
            buffer.merge(shard.buf);
        }
        self.episodes_started += consumed;
        buffer.normalize_advantages();
        self.total_steps += buffer.len() as u64;
        let stats = CollectStats {
            episodes_completed: completed_returns.len(),
            mean_episode_return: if completed_returns.is_empty() {
                f64::NAN
            } else {
                completed_returns.iter().sum::<f64>() / completed_returns.len() as f64
            },
        };
        (buffer, stats)
    }

    /// Runs `num_epochs` of minibatch SGD over a collected batch and
    /// adapts the KL coefficient — the optimization phase of one PPO
    /// iteration. All per-minibatch buffers (observation gathers, network
    /// activations, gradients, flat-gradient vectors) live in the
    /// trainer's long-lived update workspace; after the first call the
    /// loop performs O(1) heap allocations, and the arithmetic is
    /// bit-identical to the historical allocating implementation.
    pub fn update(&mut self, buffer: &RolloutBuffer, rng: &mut StdRng) -> UpdateStats {
        let n = buffer.len();
        let act_dim = self.log_std.len();
        // An empty buffer degenerates to zero minibatches per epoch (the
        // historical behaviour), so don't index into it.
        let obs_dim = buffer.obs.first().map_or(0, Vec::len);
        // Disjoint borrows of every trainer field the loop touches.
        let Self { cfg, policy, log_std, value, opt_policy, opt_value, kl_coeff, ws, .. } = self;
        let UpdateWorkspace {
            indices,
            obs,
            policy: policy_ws,
            value: value_ws,
            grad_mean,
            grad_log_std,
            vgrad,
            glp_mean,
            glp_log_std,
        } = ws;
        indices.clear();
        indices.extend(0..n);
        grad_log_std.clear();
        grad_log_std.resize(act_dim, 0.0);
        glp_mean.clear();
        glp_mean.resize(act_dim, 0.0);
        glp_log_std.clear();
        glp_log_std.resize(act_dim, 0.0);

        let mut last_policy_loss = 0.0;
        let mut last_value_loss = 0.0;
        let mut last_kl = 0.0;
        let mut last_entropy = 0.0;

        for _epoch in 0..cfg.num_epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                indices.swap(i, j);
            }
            let mut epoch_policy_loss = 0.0;
            let mut epoch_value_loss = 0.0;
            let mut epoch_kl = 0.0;
            let mut epoch_entropy = 0.0;
            let mut minibatches = 0usize;

            for chunk in indices.chunks(cfg.minibatch_size) {
                let b = chunk.len();
                obs.reset(b, obs_dim);
                for (row, &idx) in chunk.iter().enumerate() {
                    obs.row_mut(row).copy_from_slice(&buffer.obs[idx]);
                }

                // Policy forward through the workspace (activations stay
                // alive for the backward pass below).
                policy.forward_into(obs, policy_ws);

                grad_mean.reset(b, act_dim);
                grad_mean.fill(0.0);
                for g in grad_log_std.iter_mut() {
                    *g = 0.0;
                }
                let mut policy_loss = 0.0;
                let mut kl_sum = 0.0;
                // Entropy is mean-independent for a diagonal Gaussian, so
                // it comes straight from the exploration head.
                let entropy = DiagGaussian::entropy_from_log_std(log_std);
                let inv_b = 1.0 / b as f64;

                {
                    let means = policy_ws.output();
                    for (row, &idx) in chunk.iter().enumerate() {
                        let mean_new = means.row(row);
                        let dist_new = DiagGaussian::new(mean_new, log_std);
                        let action = &buffer.actions[idx];
                        let new_logp = dist_new.log_prob(action);
                        let ratio = (new_logp - buffer.log_probs[idx]).exp();
                        let adv = buffer.advantages[idx];

                        // Clipped surrogate.
                        let unclipped = ratio * adv;
                        let clipped = ratio.clamp(1.0 - cfg.clip, 1.0 + cfg.clip) * adv;
                        let surrogate = unclipped.min(clipped);
                        policy_loss -= surrogate * inv_b;
                        // d(−surrogate)/d new_logp = −ratio·adv when the
                        // unclipped branch is active (min picks it), else 0.
                        let surr_coeff =
                            if unclipped <= clipped { -ratio * adv * inv_b } else { 0.0 };

                        // Exact diagonal-Gaussian KL(old‖new) and its
                        // gradients, accumulated into the row slice.
                        let mean_old = &buffer.means[idx];
                        let gm_row = grad_mean.row_mut(row);
                        let mut kl = 0.0;
                        for k in 0..act_dim {
                            let ls_old = buffer.behaviour_log_std[k];
                            let ls_new = log_std[k];
                            let var_old = (2.0 * ls_old).exp();
                            let inv_var_new = (-2.0 * ls_new).exp();
                            let dmean = mean_new[k] - mean_old[k];
                            kl += ls_new - ls_old + 0.5 * (var_old + dmean * dmean) * inv_var_new
                                - 0.5;
                            // Gradients of the KL penalty term (coefficient
                            // applied below).
                            let kl_grad_mean = dmean * inv_var_new;
                            let kl_grad_ls = 1.0 - (var_old + dmean * dmean) * inv_var_new;
                            let c = *kl_coeff * inv_b;
                            gm_row[k] += c * kl_grad_mean;
                            grad_log_std[k] += c * kl_grad_ls;
                        }
                        kl_sum += kl;

                        // Surrogate gradients through log-prob.
                        if surr_coeff != 0.0 {
                            dist_new.log_prob_grad_mean_into(action, glp_mean);
                            dist_new.log_prob_grad_log_std_into(action, glp_log_std);
                            for k in 0..act_dim {
                                gm_row[k] += surr_coeff * glp_mean[k];
                                grad_log_std[k] += surr_coeff * glp_log_std[k];
                            }
                        }
                    }
                }

                // Entropy bonus (state-independent for a Gaussian with
                // fixed log-std): dH/d log_std_k = 1.
                if cfg.entropy_coeff != 0.0 {
                    for g in grad_log_std.iter_mut() {
                        *g -= cfg.entropy_coeff;
                    }
                }

                // Backprop through the policy network into the workspace's
                // flat buffer (whose tail holds the log_std gradients for
                // joint clipping), then step Adam in place over the split
                // parameter slices [network params ‖ log_std].
                let np = policy.num_params();
                let flat = policy.backward_into(policy_ws, grad_mean);
                flat[np..].copy_from_slice(grad_log_std);
                clip_grad_norm(flat, cfg.grad_clip);
                opt_policy.step_segments(
                    policy.params_mut().chain(std::iter::once(log_std.as_mut_slice())),
                    flat,
                );
                // Keep exploration noise in a sane band (RLlib clamps too).
                for ls in log_std.iter_mut() {
                    *ls = ls.clamp(-5.0, 2.0);
                }

                // Value-network regression on returns.
                value.forward_into(obs, value_ws);
                vgrad.reset(b, 1);
                let mut vloss = 0.0;
                {
                    let vout = value_ws.output();
                    for (row, &idx) in chunk.iter().enumerate() {
                        let err = vout.get(row, 0) - buffer.returns[idx];
                        vloss += err * err * inv_b;
                        vgrad.row_mut(row)[0] = 2.0 * err * inv_b;
                    }
                }
                let vflat = value.backward_into(value_ws, vgrad);
                clip_grad_norm(vflat, cfg.grad_clip);
                opt_value.step_segments(value.params_mut(), vflat);

                epoch_policy_loss += policy_loss;
                epoch_value_loss += vloss;
                epoch_kl += kl_sum * inv_b;
                epoch_entropy += entropy;
                minibatches += 1;
            }

            let mb = minibatches.max(1) as f64;
            last_policy_loss = epoch_policy_loss / mb;
            last_value_loss = epoch_value_loss / mb;
            last_kl = epoch_kl / mb;
            last_entropy = epoch_entropy / mb;
        }

        // Adaptive KL coefficient (RLlib rule).
        if last_kl > 2.0 * cfg.kl_target {
            *kl_coeff *= 1.5;
        } else if last_kl < 0.5 * cfg.kl_target {
            *kl_coeff *= 0.5;
        }

        UpdateStats {
            policy_loss: last_policy_loss,
            value_loss: last_value_loss,
            mean_kl: last_kl,
            entropy: last_entropy,
        }
    }

    /// Runs one PPO iteration: collect `train_batch_size` steps
    /// ([`PpoTrainer::collect_batch`]), compute GAE, run `num_epochs` of
    /// minibatch updates and adapt the KL coefficient
    /// ([`PpoTrainer::update`]).
    pub fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        self.iteration += 1;
        let (buffer, collect) = self.collect_batch();
        let update = self.update(&buffer, rng);
        IterationStats {
            iteration: self.iteration,
            total_steps: self.total_steps,
            episodes_completed: collect.episodes_completed,
            mean_episode_return: collect.mean_episode_return,
            policy_loss: update.policy_loss,
            value_loss: update.value_loss,
            mean_kl: update.mean_kl,
            entropy: update.entropy,
            kl_coeff: self.kl_coeff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ToyControlEnv;

    #[test]
    fn paper_config_matches_table2() {
        let c = PpoConfig::paper();
        assert_eq!(c.gamma, 0.99);
        assert_eq!(c.gae_lambda, 1.0);
        assert_eq!(c.kl_coeff, 0.2);
        assert_eq!(c.clip, 0.3);
        assert_eq!(c.lr, 5e-5);
        assert_eq!(c.train_batch_size, 4000);
        assert_eq!(c.minibatch_size, 128);
        assert_eq!(c.num_epochs, 30);
        assert_eq!(c.hidden, vec![256, 256]);
    }

    #[test]
    fn ppo_improves_on_toy_control() {
        let env = ToyControlEnv::new(10);
        let cfg = PpoConfig {
            lr: 3e-3,
            train_batch_size: 512,
            minibatch_size: 64,
            num_epochs: 6,
            hidden: vec![16, 16],
            initial_log_std: -0.5,
            ..PpoConfig::paper()
        };
        let mut trainer = PpoTrainer::new(&env, cfg, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for it in 0..25 {
            let stats = trainer.train_iteration(&mut rng);
            if it == 0 {
                first = stats.mean_episode_return;
            }
            last = stats.mean_episode_return;
        }
        assert!(last > first + 0.3, "PPO failed to improve: first {first}, last {last}");
        // The learned deterministic policy must push x towards 0:
        // action(x=1) should be clearly negative, action(x=-1) positive.
        let a_pos = trainer.deterministic_action(&[1.0])[0];
        let a_neg = trainer.deterministic_action(&[-1.0])[0];
        assert!(a_pos < -0.2, "action at x=1 should be negative, got {a_pos}");
        assert!(a_neg > 0.2, "action at x=-1 should be positive, got {a_neg}");
    }

    #[test]
    fn iteration_bookkeeping() {
        let env = ToyControlEnv::new(5);
        let cfg = PpoConfig {
            train_batch_size: 64,
            minibatch_size: 32,
            num_epochs: 2,
            hidden: vec![8],
            ..PpoConfig::paper()
        };
        let mut trainer = PpoTrainer::new(&env, cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s1 = trainer.train_iteration(&mut rng);
        let s2 = trainer.train_iteration(&mut rng);
        assert_eq!(s1.iteration, 1);
        assert_eq!(s2.iteration, 2);
        assert_eq!(s1.total_steps, 64);
        assert_eq!(s2.total_steps, 128);
        assert!(s1.episodes_completed > 0);
        assert!(s1.mean_kl >= 0.0 || s1.mean_kl.is_nan());
    }

    #[test]
    fn parallel_rollouts_run() {
        let env = ToyControlEnv::new(5);
        let cfg = PpoConfig {
            train_batch_size: 128,
            minibatch_size: 32,
            num_epochs: 2,
            hidden: vec![8],
            rollout_threads: 4,
            ..PpoConfig::paper()
        };
        let mut trainer = PpoTrainer::new(&env, cfg, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let stats = trainer.train_iteration(&mut rng);
        assert_eq!(stats.total_steps, 128);
        assert!(stats.episodes_completed >= 4);
    }
}

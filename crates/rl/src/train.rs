//! The scenario-driven training driver: `Scenario → PPO → checkpoint`.
//!
//! This is the single entry point behind `mflb train`, the
//! `train_policy` / `fig3_training` bench binaries and the examples. It
//! builds the mean-field environment the scenario selects
//! ([`crate::scenario_env::build_env`]), runs PPO with parallel
//! episode-indexed rollouts, and packages the result as a versioned
//! [`TrainingCheckpoint`] plus the deployable deterministic policy.
//!
//! For a fixed `(scenario, ppo, iterations, seed)` the produced checkpoint
//! is bit-identical across runs and worker counts (see the determinism
//! notes in [`crate::ppo`]).

use crate::checkpoint::{CurvePoint, TrainingCheckpoint, CHECKPOINT_FORMAT_VERSION};
use crate::ppo::{PpoConfig, PpoTrainer};
use crate::scenario_env::{build_env, PolicyShape};
use mflb_nn::Mlp;
use mflb_policy::NeuralUpperPolicy;
use mflb_sim::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything a finished training run produces.
pub struct TrainResult {
    /// The versioned artifact (save with [`TrainingCheckpoint::save`]).
    pub checkpoint: TrainingCheckpoint,
    /// The deployable deterministic policy wrapped around the trained net.
    pub policy: NeuralUpperPolicy,
}

/// Trains a policy for a scenario with PPO.
///
/// Equivalent to [`train_scenario_from`] without a warm start.
pub fn train_scenario(
    scenario: &Scenario,
    ppo: PpoConfig,
    iterations: usize,
    seed: u64,
    verbose: bool,
) -> Result<TrainResult, String> {
    train_scenario_from(scenario, ppo, iterations, seed, verbose, None)
}

/// Trains a policy for a scenario with PPO, optionally warm-starting the
/// policy network from an existing checkpoint's network (which must have
/// the shape the scenario implies).
pub fn train_scenario_from(
    scenario: &Scenario,
    ppo: PpoConfig,
    iterations: usize,
    seed: u64,
    verbose: bool,
    init: Option<&Mlp>,
) -> Result<TrainResult, String> {
    // A rollout batch is built from whole episodes restarted at ν₀; with a
    // training horizon longer than the batch, the epochs beyond the batch
    // boundary would never be visited (silent prefix bias, empty curve).
    // Refuse the misconfiguration instead.
    if scenario.config.train_episode_len > ppo.train_batch_size {
        return Err(format!(
            "train_episode_len ({}) exceeds train_batch_size ({}): episodes would be \
             truncated every iteration and later epochs never sampled; raise the batch \
             size or shorten the training horizon",
            scenario.config.train_episode_len, ppo.train_batch_size
        ));
    }
    let env = build_env(scenario)?;
    let shape = PolicyShape::for_scenario(scenario);
    let mut trainer = PpoTrainer::new(env.as_ref(), ppo.clone(), seed);
    if let Some(net) = init {
        if net.input_dim() != shape.obs_dim() || net.output_dim() != shape.act_dim() {
            return Err(format!(
                "warm-start network has shape {} -> {}, scenario needs {} -> {}",
                net.input_dim(),
                net.output_dim(),
                shape.obs_dim(),
                shape.act_dim()
            ));
        }
        trainer.load_policy_net(net);
        if verbose {
            println!("warm-started policy network from checkpoint");
        }
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut curve = Vec::with_capacity(iterations);
    for it in 0..iterations {
        let stats = trainer.train_iteration(&mut rng);
        if !stats.mean_episode_return.is_nan() {
            curve.push(CurvePoint {
                iteration: stats.iteration,
                steps: stats.total_steps,
                mean_return: stats.mean_episode_return,
                kl: stats.mean_kl,
                entropy: stats.entropy,
            });
        }
        if verbose && (it < 5 || it % 10 == 0 || it + 1 == iterations) {
            println!(
                "iter {:>4}  steps {:>9}  return {:>9.2}  kl {:.4}  entropy {:>7.2}  kl_coeff {:.3}",
                stats.iteration,
                stats.total_steps,
                stats.mean_episode_return,
                stats.mean_kl,
                stats.entropy,
                stats.kl_coeff
            );
        }
    }

    let checkpoint = TrainingCheckpoint {
        format_version: CHECKPOINT_FORMAT_VERSION,
        scenario: scenario.clone(),
        ppo,
        seed,
        total_steps: trainer.total_steps(),
        curve,
        policy_net: trainer.policy_net().clone(),
        value_net: trainer.value_net().clone(),
        log_std: trainer.log_std().to_vec(),
    };
    let policy = checkpoint.into_policy()?;
    Ok(TrainResult { checkpoint, policy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_core::SystemConfig;
    use mflb_sim::EngineSpec;

    #[test]
    fn horizon_longer_than_batch_is_refused() {
        // T = 500 (paper default) against a 64-step batch: the later
        // epochs could never be sampled, so training must not start.
        let scenario = Scenario::new(SystemConfig::paper().with_dt(5.0), EngineSpec::Aggregate);
        let ppo = PpoConfig { train_batch_size: 64, ..PpoConfig::paper() };
        let err = match train_scenario(&scenario, ppo, 1, 1, false) {
            Err(e) => e,
            Ok(_) => panic!("over-long horizon must be refused"),
        };
        assert!(err.contains("train_episode_len"), "{err}");
    }
}

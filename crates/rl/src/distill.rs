//! Distillation of a neural checkpoint onto a tabular lattice policy.
//!
//! `mflb distill` projects a [`TrainingCheckpoint`]'s policy network onto
//! the `mflb-dp` machinery: for every vertex of the [`SimplexGrid`]
//! lattice and every arrival level, the network's emitted decision rule
//! is **greedy-matched** to the nearest member of the softmin action
//! library (expected ℓ₁ routing distance under the vertex distribution,
//! [`mflb_policy::rule_l1_weighted`]), then a **DP-polish sweep** replaces
//! any matched action whose one-step-lookahead Q-value falls more than
//! [`DistillConfig::polish_slack`] (relative) behind the oracle's best —
//! so the table inherits the network's style where it is near-optimal and
//! the oracle's choice where the network would pay for it.
//!
//! The result is a [`DistilledCheckpoint`]: a versioned JSON artifact
//! whose deployable [`TabularPolicy`] decides by snap-and-lookup — no
//! network evaluation, no model lookahead — the nanosecond-class policy
//! tier a serving path wants, evaluable everywhere an `UpperPolicy` runs.

use crate::checkpoint::TrainingCheckpoint;
use crate::oracle::{solve_oracle, Oracle, OracleConfig};
use crate::scenario_env::PolicyShape;
use mflb_core::mdp::UpperPolicy;
use mflb_core::{DecisionRule, StateDist};
use mflb_dp::{ActionLibrary, SimplexGrid};
use mflb_policy::rule_l1_weighted;
use mflb_sim::Scenario;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current distilled-checkpoint schema version. Bump on layout changes.
pub const DISTILLED_FORMAT_VERSION: u32 = 1;

/// Configuration of a distillation pass.
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// The oracle solve backing the polish sweep (grid resolution, cache).
    pub oracle: OracleConfig,
    /// Relative Q-value slack of the polish sweep: the network-matched
    /// action is kept at a vertex iff
    /// `Q(best) − Q(match) ≤ polish_slack · max(|Q(best)|, 1)`; larger
    /// values preserve more of the network's style, `0` forces exact
    /// Q-agreement with the DP greedy policy.
    pub polish_slack: f64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        // 0.005 measured on the quick-scale paper dynamics: keeps ~3/4 of
        // the network's choices while staying within a few percent of the
        // oracle's drops; 0.02 already lets every action through (the Q
        // spread between softmin temperatures is small relative to |V|).
        Self { oracle: OracleConfig::default(), polish_slack: 0.005 }
    }
}

/// A versioned tabular policy artifact produced by `mflb distill`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistilledCheckpoint {
    /// Schema version; must equal [`DISTILLED_FORMAT_VERSION`] to load.
    pub format_version: u32,
    /// The scenario the table was distilled for.
    pub scenario: Scenario,
    /// Lattice resolution `G` of the table.
    pub grid_resolution: usize,
    /// Display names of the action library.
    pub action_names: Vec<String>,
    /// The library's decision rules, in order.
    pub action_rules: Vec<DecisionRule>,
    /// `table[s · L + l]` = action index at lattice point `s`, level `l`.
    pub table: Vec<u32>,
    /// Fraction of table entries where the network's matched action
    /// survived the polish sweep (1 = pure imitation, 0 = pure oracle).
    pub nn_fraction: f64,
    /// The polish slack the table was built with.
    pub polish_slack: f64,
    /// Cumulative training steps of the source checkpoint.
    pub source_steps: u64,
    /// Training seed of the source checkpoint.
    pub source_seed: u64,
}

impl DistilledCheckpoint {
    /// Checks internal consistency: version, scenario, table shapes and
    /// action indices.
    pub fn validate(&self) -> Result<(), String> {
        if self.format_version != DISTILLED_FORMAT_VERSION {
            return Err(format!(
                "distilled checkpoint format version {} is not supported (expected {})",
                self.format_version, DISTILLED_FORMAT_VERSION
            ));
        }
        self.scenario.validate().map_err(|e| format!("embedded scenario: {e}"))?;
        if self.grid_resolution == 0 {
            return Err("grid resolution must be at least 1".into());
        }
        if self.action_names.len() != self.action_rules.len() || self.action_rules.is_empty() {
            return Err(format!(
                "action names/rules mismatch: {} names, {} rules",
                self.action_names.len(),
                self.action_rules.len()
            ));
        }
        let zs = self.scenario.config.num_states();
        let d = self.scenario.config.d;
        for (name, rule) in self.action_names.iter().zip(self.action_rules.iter()) {
            if rule.num_states() != zs || rule.d() != d {
                return Err(format!(
                    "action '{name}' has shape ({}, d = {}), scenario needs ({zs}, d = {d})",
                    rule.num_states(),
                    rule.d()
                ));
            }
        }
        let grid = SimplexGrid::new(zs, self.grid_resolution);
        let levels = self.scenario.config.arrivals.num_levels();
        if self.table.len() != grid.num_points() * levels {
            return Err(format!(
                "table has {} entries, expected {} ({} lattice points × {} levels)",
                self.table.len(),
                grid.num_points() * levels,
                grid.num_points(),
                levels
            ));
        }
        if let Some(&bad) = self.table.iter().find(|&&a| (a as usize) >= self.action_rules.len()) {
            return Err(format!(
                "table routes to action {bad}, outside the {}-action library",
                self.action_rules.len()
            ));
        }
        Ok(())
    }

    /// Checks the table can be deployed against `target`: same length-state
    /// space, sample size and arrival levels (the tabular policy is
    /// homogeneous, so composite heterogeneous targets are rejected).
    pub fn validate_for(&self, target: &Scenario) -> Result<(), String> {
        self.validate()?;
        let shape = PolicyShape::for_scenario(target);
        let zs = self.scenario.config.num_states();
        if shape.rule_states != shape.obs_states {
            return Err("distilled tables emit plain length-state rules; heterogeneous \
                 composite targets are not supported"
                .into());
        }
        if shape.obs_states != zs || shape.d != self.scenario.config.d {
            return Err(format!(
                "table is over ({zs} states, d = {}) but the target needs ({} states, d = {})",
                self.scenario.config.d, shape.obs_states, shape.d
            ));
        }
        if shape.num_levels != self.scenario.config.arrivals.num_levels() {
            return Err(format!(
                "table has {} arrival levels, target has {}",
                self.scenario.config.arrivals.num_levels(),
                shape.num_levels
            ));
        }
        Ok(())
    }

    /// Builds the deployable table-lookup policy (validates first).
    pub fn into_policy(&self) -> Result<TabularPolicy, String> {
        self.validate()?;
        let zs = self.scenario.config.num_states();
        let actions = ActionLibrary::new(
            self.action_names.iter().cloned().zip(self.action_rules.iter().cloned()).collect(),
        );
        Ok(TabularPolicy {
            grid: SimplexGrid::new(zs, self.grid_resolution),
            num_levels: self.scenario.config.arrivals.num_levels(),
            actions,
            table: self.table.clone(),
            name: "MF-DP (distilled)".to_string(),
        })
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("distilled checkpoint serialization cannot fail")
    }

    /// Parses and validates from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let ckpt: Self =
            serde_json::from_str(text).map_err(|e| format!("parse distilled checkpoint: {e}"))?;
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Writes the checkpoint to a JSON file (creating parent directories).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, self.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Reads and validates a checkpoint from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }
}

/// The deployable distilled policy: snap the observed distribution to its
/// nearest lattice point, look the action up, done. No network, no model.
#[derive(Clone)]
pub struct TabularPolicy {
    grid: SimplexGrid,
    num_levels: usize,
    actions: ActionLibrary,
    table: Vec<u32>,
    name: String,
}

impl TabularPolicy {
    /// The action index the table selects for a state (test hook).
    pub fn action_index(&self, dist: &StateDist, lambda_idx: usize) -> usize {
        assert!(lambda_idx < self.num_levels, "lambda level out of range");
        let s = self.grid.snap(dist);
        self.table[s * self.num_levels + lambda_idx] as usize
    }

    /// The action library the table routes into.
    pub fn actions(&self) -> &ActionLibrary {
        &self.actions
    }

    /// The lattice the table is defined over.
    pub fn grid(&self) -> &SimplexGrid {
        &self.grid
    }
}

impl UpperPolicy for TabularPolicy {
    fn decide(&self, dist: &StateDist, lambda_idx: usize, _lambda: f64) -> DecisionRule {
        self.actions.rule(self.action_index(dist, lambda_idx)).clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Outcome of a distillation pass: the artifact plus the oracle that
/// backed the polish sweep (for provenance reporting).
pub struct DistillResult {
    /// The distilled artifact, ready to save or deploy.
    pub checkpoint: DistilledCheckpoint,
    /// The oracle used for the polish sweep.
    pub oracle: Oracle,
}

/// Projects a trained checkpoint onto a tabular lattice policy:
/// greedy-match each vertex's network rule against the action library,
/// then DP-polish the matches against the oracle's Q-values.
///
/// Fails with a readable message on heterogeneous scenarios (composite
/// rule spaces have no library to match into), infeasible oracle solves,
/// or checkpoint/scenario shape mismatches.
pub fn distill_checkpoint(
    ckpt: &TrainingCheckpoint,
    scenario: &Scenario,
    config: &DistillConfig,
) -> Result<DistillResult, String> {
    if !(config.polish_slack >= 0.0 && config.polish_slack.is_finite()) {
        return Err(format!("polish slack must be finite and ≥ 0, got {}", config.polish_slack));
    }
    ckpt.validate_for(scenario)?;
    let shape = PolicyShape::for_scenario(scenario);
    if shape.rule_states != shape.obs_states {
        return Err("distillation needs plain length-state rules; heterogeneous composite \
             scenarios are not supported"
            .into());
    }
    let oracle = solve_oracle(scenario, &config.oracle)?;
    let sol = oracle.policy.solution();
    let nn = shape.into_policy(ckpt.policy_net.clone());
    let grid = sol.grid();
    let levels = sol.num_levels();
    let library = sol.actions();

    let mut table = Vec::with_capacity(grid.num_points() * levels);
    let mut kept = 0usize;
    for s in 0..grid.num_points() {
        let nu = grid.point(s);
        for l in 0..levels {
            let lambda = sol.config().arrivals.level_rate(l);
            let nn_rule = nn.decide(&nu, l, lambda);
            let mut match_a = 0usize;
            let mut match_dist = f64::INFINITY;
            for a in 0..library.len() {
                let dist = rule_l1_weighted(library.rule(a), &nn_rule, &nu);
                if dist < match_dist {
                    match_dist = dist;
                    match_a = a;
                }
            }
            let q = sol.q_values(&nu, l);
            let mut best_a = 0usize;
            for (a, &qa) in q.iter().enumerate() {
                if qa > q[best_a] {
                    best_a = a;
                }
            }
            let tolerance = config.polish_slack * q[best_a].abs().max(1.0);
            let chosen = if q[best_a] - q[match_a] <= tolerance {
                kept += 1;
                match_a
            } else {
                best_a
            };
            table.push(chosen as u32);
        }
    }

    let nn_fraction = kept as f64 / table.len().max(1) as f64;
    let checkpoint = DistilledCheckpoint {
        format_version: DISTILLED_FORMAT_VERSION,
        scenario: scenario.clone(),
        grid_resolution: grid.resolution(),
        action_names: (0..library.len()).map(|a| library.name(a).to_string()).collect(),
        action_rules: library.rules().to_vec(),
        table,
        nn_fraction,
        polish_slack: config.polish_slack,
        source_steps: ckpt.total_steps,
        source_seed: ckpt.seed,
    };
    checkpoint.validate()?;
    Ok(DistillResult { checkpoint, oracle })
}

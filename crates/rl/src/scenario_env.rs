//! Scenario-selected mean-field training environments.
//!
//! PR 2 made every *finite-system* engine reachable from a serde
//! [`Scenario`]; this module does the same for the *training* side: given a
//! scenario, [`build_env`] constructs the mean-field control MDP whose
//! optimal policy is what the scenario's finite system should deploy
//! (§2.3/§5 of the paper — train in the limit, evaluate at finite `N`):
//!
//! * [`EngineSpec::PerClient`] / [`EngineSpec::Aggregate`] /
//!   [`EngineSpec::Staggered`] / [`EngineSpec::JobLevel`] — the homogeneous
//!   exponential mean field ([`MfcEnv`], Eq. 20–31). Staggered refreshes and
//!   job-level FIFO queues share the homogeneous limit, so the same training
//!   environment serves all four.
//! * [`EngineSpec::Hetero`] — the heterogeneous-pool mean field
//!   ([`HeteroMfcEnv`] over [`mflb_core::HeteroMeanField`], the §2.5
//!   extension). The policy observes the overall queue-**length**
//!   distribution — exactly what `HeteroEngine::empirical` reports at
//!   deployment — and emits a decision rule over composite
//!   `(length, class)` states.
//! * [`EngineSpec::Ph`] — the phase-type-service mean field ([`PhMfcEnv`]
//!   over [`mflb_core::PhMeanFieldMdp`], the §5 extension). The policy
//!   observes the length marginal of the joint `(length, phase)` state.
//! * [`EngineSpec::Graph`] — the **degree-indexed** graph mean field
//!   ([`GraphMfcEnv`] over [`mflb_core::graph_mean_field_step`], the
//!   locality-constrained extension of arXiv:2312.12973): identical
//!   observation/action interface to the homogeneous model, but the
//!   per-state arrival rates are the annealed `k`-neighborhood closure.
//!   A full-mesh topology selects the exact Eq. 20–28 model ([`MfcEnv`]).
//! * [`EngineSpec::Event`] — the homogeneous mean field with the service
//!   rate mean-matched to the job-size law (`α / E[size]`): exact in law
//!   for exponential sizes, a reference model for the heavy-tailed laws.
//!   Infinite-mean laws are rejected.
//!
//! [`PolicyShape`] is the single source of truth for the observation/action
//! dimensions a scenario implies; checkpoint validation and policy
//! construction both go through it so a net trained for one scenario can
//! never silently deploy against an incompatible one.

use crate::env::{Env, StepResult};
use crate::mfc_env::MfcEnv;
use mflb_core::mdp::{action_dim, encode_observation, observation_dim};
use mflb_core::{
    graph_mean_field_step, DecisionRule, HeteroMeanField, PhMeanFieldMdp, PhMfState, StateDist,
    SystemConfig,
};
use mflb_policy::NeuralUpperPolicy;
use mflb_queue::PhaseType;
use mflb_sim::{EngineSpec, Scenario};
use rand::rngs::StdRng;

/// The policy interface a scenario implies: what the learned network
/// observes and the state space of the decision rule it emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyShape {
    /// States of the observed length distribution (`B + 1`). Every engine
    /// reports a length-only empirical distribution to the upper policy.
    pub obs_states: usize,
    /// States of the emitted decision rule: `B + 1` for homogeneous
    /// scenarios, `C·(B+1)` composite states for heterogeneous pools.
    pub rule_states: usize,
    /// Number of sampled queues `d`.
    pub d: usize,
    /// Number of arrival levels `|Λ|`.
    pub num_levels: usize,
}

impl PolicyShape {
    /// Derives the shape from a scenario.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        let config = &scenario.config;
        let zs = config.num_states();
        let rule_states = match &scenario.engine {
            EngineSpec::Hetero { rates } => zs * hetero_classes(rates).1.len(),
            _ => zs,
        };
        Self { obs_states: zs, rule_states, d: config.d, num_levels: config.arrivals.num_levels() }
    }

    /// Observation dimensionality: `obs_states + num_levels`.
    pub fn obs_dim(&self) -> usize {
        observation_dim(self.obs_states, self.num_levels)
    }

    /// Action (decision-rule logit) dimensionality: `rule_states^d · d`.
    pub fn act_dim(&self) -> usize {
        action_dim(self.rule_states, self.d)
    }

    /// Builds the deployable policy around a trained network of this shape.
    ///
    /// # Panics
    /// Panics if the network dims do not match the shape (checkpoint
    /// loading validates first and reports an `Err` instead).
    pub fn into_policy(self, net: mflb_nn::Mlp) -> NeuralUpperPolicy {
        NeuralUpperPolicy::with_rule_space(
            net,
            self.obs_states,
            self.rule_states,
            self.d,
            self.num_levels,
        )
    }
}

/// Derives `(class_weights, class_rates)` from a per-server rate vector,
/// deduplicating rates in first-appearance order — the same quantization
/// `mflb_sim`'s `HeteroEngine` applies, so the composite state indices of
/// training and deployment always agree.
pub fn hetero_classes(rates: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut class_rates: Vec<f64> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for &r in rates {
        if let Some(c) = class_rates.iter().position(|&x| (x - r).abs() < 1e-12) {
            counts[c] += 1;
        } else {
            class_rates.push(r);
            counts.push(1);
        }
    }
    let total = rates.len().max(1) as f64;
    let weights = counts.iter().map(|&c| c as f64 / total).collect();
    (weights, class_rates)
}

/// Builds the mean-field training environment a scenario selects.
///
/// The scenario is validated first; malformed specs come back as `Err`.
pub fn build_env(scenario: &Scenario) -> Result<Box<dyn Env>, String> {
    scenario.validate()?;
    let config = scenario.config.clone();
    Ok(match &scenario.engine {
        EngineSpec::PerClient
        | EngineSpec::Aggregate
        | EngineSpec::Staggered { .. }
        | EngineSpec::JobLevel => Box::new(MfcEnv::new(config)),
        EngineSpec::Hetero { rates } => Box::new(HeteroMfcEnv::new(config, rates)),
        EngineSpec::Ph { service } => Box::new(PhMfcEnv::new(config, service.build()?)),
        EngineSpec::Graph { topology, .. } => match topology.limit_neighborhood_size() {
            // Accessible sets growing with M: the limit is the paper's
            // exact full-mesh mean field.
            None => Box::new(MfcEnv::new(config)),
            Some(k) => Box::new(GraphMfcEnv::new(config, k)),
        },
        EngineSpec::Event { job_size } => {
            // Mean-matched exponential model: a server of rate α working
            // through mean-size jobs completes them at rate α/mean —
            // exact in law for exponential sizes, a reference model for
            // the heavy-tailed laws (the finite-system evaluation stays
            // job-level either way).
            let mean = job_size.mean();
            if !(mean > 0.0 && mean.is_finite()) {
                return Err(format!(
                    "event job sizes have unusable mean {mean}; training needs a \
                     finite-mean law (Pareto shape > 1 or a bounded law)"
                ));
            }
            let mut c = config;
            c.service_rate /= mean;
            Box::new(MfcEnv::new(c))
        }
    })
}

/// The heterogeneous-pool mean-field control MDP as a PPO environment.
///
/// Observation: `[length marginal (B+1), onehot(λ_t)]` — the marginal is
/// what `HeteroEngine::empirical` reports at deployment, so training and
/// deployment see the same interface (the per-class split is hidden state,
/// making this a POMDP like the paper's delayed-information setting).
/// Action: decision-rule logits over composite `(length, class)` tuples.
/// Reward: `−D_t` (minus the holding-cost extension if configured).
pub struct HeteroMfcEnv {
    config: SystemConfig,
    class_weights: Vec<f64>,
    class_rates: Vec<f64>,
    state: HeteroMeanField,
    lambda_idx: usize,
    t: usize,
    horizon: usize,
}

impl HeteroMfcEnv {
    /// Creates the environment from a per-server rate vector (deduplicated
    /// into classes via [`hetero_classes`]).
    pub fn new(config: SystemConfig, rates: &[f64]) -> Self {
        config.validate().expect("invalid system configuration");
        let (class_weights, class_rates) = hetero_classes(rates);
        let horizon = config.train_episode_len;
        let state = Self::initial(&config, &class_weights, &class_rates);
        Self { config, class_weights, class_rates, state, lambda_idx: 0, t: 0, horizon }
    }

    fn initial(config: &SystemConfig, weights: &[f64], rates: &[f64]) -> HeteroMeanField {
        let nu0 = StateDist::new(config.initial_dist.clone());
        HeteroMeanField::new(weights.to_vec(), rates.to_vec(), vec![nu0; weights.len()])
    }

    /// The overall queue-length marginal `Σ_c w_c·ν_c`.
    fn length_marginal(&self) -> StateDist {
        let zs = self.config.num_states();
        let mut probs = vec![0.0; zs];
        for (c, &w) in self.class_weights.iter().enumerate() {
            let dist = self.state.class_dist(c);
            for (z, p) in probs.iter_mut().enumerate() {
                *p += w * dist.prob(z);
            }
        }
        StateDist::new(probs)
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(
            &self.length_marginal(),
            self.lambda_idx,
            self.config.arrivals.num_levels(),
        )
    }
}

impl Env for HeteroMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.config.num_states(), self.config.arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.config.num_states() * self.class_rates.len(), self.config.d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state = Self::initial(&self.config, &self.class_weights, &self.class_rates);
        self.lambda_idx = self.config.arrivals.sample_initial(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule_states = self.config.num_states() * self.class_rates.len();
        let rule = DecisionRule::from_logits(rule_states, self.config.d, action);
        let lambda = self.config.arrivals.level_rate(self.lambda_idx);
        let detail = self.state.step(&rule, lambda, self.config.dt);
        let mut cost = detail.expected_drops;
        if self.config.holding_cost > 0.0 {
            cost += self.config.holding_cost * detail.next.mean_queue_length() * self.config.dt;
        }
        self.state = detail.next;
        self.lambda_idx = self.config.arrivals.step(self.lambda_idx, rng);
        self.t += 1;
        StepResult { obs: self.observe(), reward: -cost, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self {
            config: self.config.clone(),
            class_weights: self.class_weights.clone(),
            class_rates: self.class_rates.clone(),
            state: Self::initial(&self.config, &self.class_weights, &self.class_rates),
            lambda_idx: 0,
            t: 0,
            horizon: self.horizon,
        })
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

/// The degree-indexed graph mean-field control MDP as a PPO environment
/// (the locality-constrained extension; see
/// [`mflb_core::graph_meanfield`]).
///
/// Observation and action are exactly the homogeneous model's —
/// `[ν_t (B+1), onehot(λ_t)]` in, decision-rule logits over length
/// tuples out — so graph checkpoints share the homogeneous
/// [`PolicyShape`] and a net trained here deploys against
/// `GraphEngine::empirical` unchanged. Only the *dynamics* differ: the
/// per-state arrival rates use the annealed `k`-neighborhood closure
/// instead of the Eq. 22 full-mesh integral, which is what teaches the
/// policy that herding onto globally short queues is capped by each
/// dispatcher's catchment.
pub struct GraphMfcEnv {
    config: SystemConfig,
    /// Closed-neighborhood size `k` in the `M → ∞` limit.
    k: usize,
    nu: StateDist,
    lambda_idx: usize,
    t: usize,
    horizon: usize,
}

impl GraphMfcEnv {
    /// Creates the environment for a limit neighborhood size `k ≥ 1`
    /// (from [`mflb_core::Topology::limit_neighborhood_size`]).
    pub fn new(config: SystemConfig, k: usize) -> Self {
        config.validate().expect("invalid system configuration");
        assert!(k >= 1, "neighborhood size must be at least 1");
        let horizon = config.train_episode_len;
        let nu = StateDist::new(config.initial_dist.clone());
        Self { config, k, nu, lambda_idx: 0, t: 0, horizon }
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(&self.nu, self.lambda_idx, self.config.arrivals.num_levels())
    }
}

impl Env for GraphMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.config.num_states(), self.config.arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.config.num_states(), self.config.d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.nu = StateDist::new(self.config.initial_dist.clone());
        self.lambda_idx = self.config.arrivals.sample_initial(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule = DecisionRule::from_logits(self.config.num_states(), self.config.d, action);
        let lambda = self.config.arrivals.level_rate(self.lambda_idx);
        let detail = graph_mean_field_step(
            &self.nu,
            &rule,
            lambda,
            self.config.service_rate,
            self.config.dt,
            self.k,
        );
        let mut cost = detail.expected_drops;
        if self.config.holding_cost > 0.0 {
            cost +=
                self.config.holding_cost * detail.next_dist.mean_queue_length() * self.config.dt;
        }
        self.nu = detail.next_dist;
        self.lambda_idx = self.config.arrivals.step(self.lambda_idx, rng);
        self.t += 1;
        StepResult { obs: self.observe(), reward: -cost, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self::new(self.config.clone(), self.k))
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

/// The phase-type-service mean-field control MDP as a PPO environment
/// (§5 "non-exponential service times").
///
/// Observation: `[length marginal (B+1), onehot(λ_t)]`; the joint
/// `(length, phase)` distribution is hidden state. Action: decision-rule
/// logits over plain length tuples, as in the homogeneous model.
pub struct PhMfcEnv {
    mdp: PhMeanFieldMdp,
    state: PhMfState,
    t: usize,
    horizon: usize,
}

impl PhMfcEnv {
    /// Creates the environment for a service-time law.
    pub fn new(config: SystemConfig, service: PhaseType) -> Self {
        let horizon = config.train_episode_len;
        let mdp = PhMeanFieldMdp::new(config, service);
        let state = PhMfState {
            dist: mflb_core::PhDist::all_empty(mdp.config().buffer, mdp.service().num_phases()),
            lambda_idx: 0,
        };
        Self { mdp, state, t: 0, horizon }
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(
            &self.state.dist.length_marginal(),
            self.state.lambda_idx,
            self.mdp.config().arrivals.num_levels(),
        )
    }
}

impl Env for PhMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.mdp.config().num_states(), self.mdp.config().arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.mdp.config().num_states(), self.mdp.config().d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state = self.mdp.initial_state(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule =
            DecisionRule::from_logits(self.mdp.config().num_states(), self.mdp.config().d, action);
        let (next, reward, _) = self.mdp.step(&self.state, &rule, rng);
        self.state = next;
        self.t += 1;
        StepResult { obs: self.observe(), reward, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self::new(self.mdp.config().clone(), self.mdp.service().clone()))
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_sim::ServiceLaw;
    use rand::SeedableRng;

    fn base_config() -> SystemConfig {
        let mut c = SystemConfig::paper().with_size(100, 10).with_dt(5.0);
        c.train_episode_len = 10;
        c
    }

    fn hetero_scenario() -> Scenario {
        let mut rates = vec![1.6; 5];
        rates.extend(vec![0.4; 5]);
        Scenario::new(base_config(), EngineSpec::Hetero { rates })
    }

    #[test]
    fn shapes_per_engine_kind() {
        let homog = PolicyShape::for_scenario(&Scenario::new(base_config(), EngineSpec::Aggregate));
        assert_eq!((homog.obs_states, homog.rule_states), (6, 6));
        assert_eq!(homog.obs_dim(), 8);
        assert_eq!(homog.act_dim(), 72);

        let het = PolicyShape::for_scenario(&hetero_scenario());
        assert_eq!((het.obs_states, het.rule_states), (6, 12));
        assert_eq!(het.obs_dim(), 8);
        assert_eq!(het.act_dim(), 12 * 12 * 2);

        let ph = PolicyShape::for_scenario(&Scenario::new(
            base_config(),
            EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
        ));
        assert_eq!((ph.obs_states, ph.rule_states), (6, 6));
    }

    #[test]
    fn built_envs_match_their_shapes_and_run_episodes() {
        let scenarios = vec![
            Scenario::new(base_config(), EngineSpec::Aggregate),
            hetero_scenario(),
            Scenario::new(
                base_config(),
                EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
            ),
            Scenario::new(
                base_config(),
                EngineSpec::Event {
                    job_size: mflb_core::JobSizeLaw::BoundedPareto {
                        shape: 1.5,
                        lo: 0.2,
                        hi: 20.0,
                    },
                },
            ),
        ];
        for scenario in scenarios {
            let shape = PolicyShape::for_scenario(&scenario);
            let mut env = build_env(&scenario).expect("valid scenario");
            assert_eq!(env.obs_dim(), shape.obs_dim());
            assert_eq!(env.act_dim(), shape.act_dim());
            assert_eq!(env.horizon_hint(), Some(10));
            let mut rng = StdRng::seed_from_u64(1);
            let obs = env.reset(&mut rng);
            assert_eq!(obs.len(), shape.obs_dim());
            let action = vec![0.0; env.act_dim()];
            let mut steps = 0;
            loop {
                let r = env.step(&action, &mut rng);
                steps += 1;
                assert!(r.reward <= 0.0, "reward is minus drops");
                let mass: f64 = r.obs[..shape.obs_states].iter().sum();
                assert!((mass - 1.0).abs() < 1e-8, "length marginal stays a distribution");
                if r.done {
                    break;
                }
            }
            assert_eq!(steps, 10);
        }
    }

    #[test]
    fn single_class_hetero_env_matches_homogeneous_env() {
        // One rate class: the hetero mean field collapses to the Eq. 20–28
        // model, and both envs consume one RNG draw per step, so identical
        // seeds must give identical rewards.
        let cfg = base_config();
        let mut hetero = HeteroMfcEnv::new(cfg.clone(), &[1.0; 10]);
        let mut homog = MfcEnv::new(cfg);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        hetero.reset(&mut rng_a);
        homog.reset(&mut rng_b);
        let action = vec![0.3; homog.act_dim()];
        for _ in 0..10 {
            let a = hetero.step(&action, &mut rng_a);
            let b = homog.step(&action, &mut rng_b);
            assert!((a.reward - b.reward).abs() < 1e-9, "{} vs {}", a.reward, b.reward);
        }
    }

    #[test]
    fn build_env_rejects_malformed_scenarios() {
        let bad = Scenario::new(base_config(), EngineSpec::Hetero { rates: vec![1.0; 3] });
        assert!(build_env(&bad).is_err(), "pool size mismatch must be rejected");
        let bad_top = Scenario::new(
            base_config(),
            EngineSpec::Graph {
                topology: mflb_core::Topology::Ring { radius: 7 },
                shard_size: None,
            },
        );
        assert!(build_env(&bad_top).is_err(), "over-wide ring must be rejected");
        let infinite_mean = Scenario::new(
            base_config(),
            EngineSpec::Event {
                job_size: mflb_core::JobSizeLaw::Pareto { shape: 0.9, scale: 1.0 },
            },
        );
        let err = build_env(&infinite_mean).err().expect("infinite-mean law must be rejected");
        assert!(err.contains("mean"), "infinite-mean law must be rejected readably: {err}");
    }

    #[test]
    fn graph_env_shares_the_homogeneous_policy_shape() {
        let scenario = Scenario::new(
            base_config(),
            EngineSpec::Graph {
                topology: mflb_core::Topology::Ring { radius: 2 },
                shard_size: None,
            },
        );
        let shape = PolicyShape::for_scenario(&scenario);
        assert_eq!((shape.obs_states, shape.rule_states), (6, 6));
        let mut env = build_env(&scenario).expect("valid scenario");
        assert_eq!(env.obs_dim(), shape.obs_dim());
        assert_eq!(env.act_dim(), shape.act_dim());
        let mut rng = StdRng::seed_from_u64(1);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.len(), shape.obs_dim());
        let action = vec![0.0; env.act_dim()];
        let r = env.step(&action, &mut rng);
        assert!(r.reward <= 0.0);
        let mass: f64 = r.obs[..6].iter().sum();
        assert!((mass - 1.0).abs() < 1e-8);
    }

    #[test]
    fn full_mesh_graph_scenario_trains_in_the_exact_mean_field() {
        // FullMesh has no finite limit degree, so build_env must select the
        // exact Eq. 20–28 environment: same RNG consumption, same rewards
        // as the aggregate scenario's env.
        let graph = Scenario::new(
            base_config(),
            EngineSpec::Graph { topology: mflb_core::Topology::FullMesh, shard_size: None },
        );
        let agg = Scenario::new(base_config(), EngineSpec::Aggregate);
        let mut a = build_env(&graph).unwrap();
        let mut b = build_env(&agg).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        a.reset(&mut rng_a);
        b.reset(&mut rng_b);
        let action = vec![0.2; a.act_dim()];
        for _ in 0..10 {
            let ra = a.step(&action, &mut rng_a);
            let rb = b.step(&action, &mut rng_b);
            assert!((ra.reward - rb.reward).abs() < 1e-12, "{} vs {}", ra.reward, rb.reward);
        }
    }

    #[test]
    fn huge_neighborhoods_approach_the_homogeneous_env() {
        // k = 10_000: the annealed closure is numerically indistinguishable
        // from the full-mesh model, so per-step rewards must agree tightly.
        let cfg = base_config();
        let mut graph = GraphMfcEnv::new(cfg.clone(), 10_000);
        let mut homog = MfcEnv::new(cfg);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        graph.reset(&mut rng_a);
        homog.reset(&mut rng_b);
        let action = vec![0.3; homog.act_dim()];
        for _ in 0..10 {
            let a = graph.step(&action, &mut rng_a);
            let b = homog.step(&action, &mut rng_b);
            assert!((a.reward - b.reward).abs() < 1e-4, "{} vs {}", a.reward, b.reward);
        }
    }

    #[test]
    fn hetero_class_derivation_matches_first_appearance_order() {
        let (w, r) = hetero_classes(&[1.6, 0.4, 1.6, 0.4, 0.4]);
        assert_eq!(r, vec![1.6, 0.4]);
        assert!((w[0] - 0.4).abs() < 1e-12 && (w[1] - 0.6).abs() < 1e-12);
    }
}

//! Scenario-selected mean-field training environments.
//!
//! PR 2 made every *finite-system* engine reachable from a serde
//! [`Scenario`]; this module does the same for the *training* side: given a
//! scenario, [`build_env`] constructs the mean-field control MDP whose
//! optimal policy is what the scenario's finite system should deploy
//! (§2.3/§5 of the paper — train in the limit, evaluate at finite `N`):
//!
//! * [`EngineSpec::PerClient`] / [`EngineSpec::Aggregate`] /
//!   [`EngineSpec::Staggered`] / [`EngineSpec::JobLevel`] — the homogeneous
//!   exponential mean field ([`MfcEnv`], Eq. 20–31). Staggered refreshes and
//!   job-level FIFO queues share the homogeneous limit, so the same training
//!   environment serves all four.
//! * [`EngineSpec::Hetero`] — the heterogeneous-pool mean field
//!   ([`HeteroMfcEnv`] over [`mflb_core::HeteroMeanField`], the §2.5
//!   extension). The policy observes the overall queue-**length**
//!   distribution — exactly what `HeteroEngine::empirical` reports at
//!   deployment — and emits a decision rule over composite
//!   `(length, class)` states.
//! * [`EngineSpec::Ph`] — the phase-type-service mean field ([`PhMfcEnv`]
//!   over [`mflb_core::PhMeanFieldMdp`], the §5 extension). The policy
//!   observes the length marginal of the joint `(length, phase)` state.
//! * [`EngineSpec::Graph`] — the **degree-indexed** graph mean field
//!   ([`GraphMfcEnv`] over [`mflb_core::graph_mean_field_step`], the
//!   locality-constrained extension of arXiv:2312.12973): identical
//!   observation/action interface to the homogeneous model, but the
//!   per-state arrival rates are the annealed `k`-neighborhood closure.
//!   A full-mesh topology selects the exact Eq. 20–28 model ([`MfcEnv`]).
//! * [`EngineSpec::Event`] — the homogeneous mean field with the service
//!   rate mean-matched to the job-size law (`α / E[size]`): exact in law
//!   for exponential sizes, a reference model for the heavy-tailed laws.
//!   Infinite-mean laws are rejected.
//!
//! Scenarios carrying a [`FaultPlan`] (the supported engine kinds:
//! `Event`, `Graph`, `JobLevel`) train in [`FaultyMfcEnv`] — the same
//! mean-field model degraded by the plan's *annealed* fault limit:
//! crashes become the two-state availability ODE scaling the service
//! rate, stragglers/overloads their window factors, and dropped
//! observation refreshes freeze the snapshot the policy sees (a POMDP,
//! exactly the paper's delayed-information information structure).
//! Fault-free scenarios never touch this path, so their environments,
//! RNG streams and checkpoints are byte-identical to before.
//!
//! [`PolicyShape`] is the single source of truth for the observation/action
//! dimensions a scenario implies; checkpoint validation and policy
//! construction both go through it so a net trained for one scenario can
//! never silently deploy against an incompatible one.

use crate::env::{Env, StepResult};
use crate::mfc_env::MfcEnv;
use mflb_core::mdp::{action_dim, encode_observation, observation_dim};
use mflb_core::{
    graph_arrival_rates, graph_mean_field_step, mean_field_step_with_rates,
    per_state_arrival_rates, DecisionRule, FaultPlan, HeteroMeanField, PhMeanFieldMdp, PhMfState,
    StateDist, SystemConfig,
};
use mflb_policy::NeuralUpperPolicy;
use mflb_queue::PhaseType;
use mflb_sim::{EngineSpec, Scenario};
use rand::rngs::StdRng;
use rand::Rng;

/// The policy interface a scenario implies: what the learned network
/// observes and the state space of the decision rule it emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyShape {
    /// States of the observed length distribution (`B + 1`). Every engine
    /// reports a length-only empirical distribution to the upper policy.
    pub obs_states: usize,
    /// States of the emitted decision rule: `B + 1` for homogeneous
    /// scenarios, `C·(B+1)` composite states for heterogeneous pools.
    pub rule_states: usize,
    /// Number of sampled queues `d`.
    pub d: usize,
    /// Number of arrival levels `|Λ|`.
    pub num_levels: usize,
}

impl PolicyShape {
    /// Derives the shape from a scenario.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        let config = &scenario.config;
        let zs = config.num_states();
        let rule_states = match &scenario.engine {
            EngineSpec::Hetero { rates } => zs * hetero_classes(rates).1.len(),
            _ => zs,
        };
        Self { obs_states: zs, rule_states, d: config.d, num_levels: config.arrivals.num_levels() }
    }

    /// Observation dimensionality: `obs_states + num_levels`.
    pub fn obs_dim(&self) -> usize {
        observation_dim(self.obs_states, self.num_levels)
    }

    /// Action (decision-rule logit) dimensionality: `rule_states^d · d`.
    pub fn act_dim(&self) -> usize {
        action_dim(self.rule_states, self.d)
    }

    /// Builds the deployable policy around a trained network of this shape.
    ///
    /// # Panics
    /// Panics if the network dims do not match the shape (checkpoint
    /// loading validates first and reports an `Err` instead).
    pub fn into_policy(self, net: mflb_nn::Mlp) -> NeuralUpperPolicy {
        NeuralUpperPolicy::with_rule_space(
            net,
            self.obs_states,
            self.rule_states,
            self.d,
            self.num_levels,
        )
    }
}

/// Derives `(class_weights, class_rates)` from a per-server rate vector,
/// deduplicating rates in first-appearance order — the same quantization
/// `mflb_sim`'s `HeteroEngine` applies, so the composite state indices of
/// training and deployment always agree.
pub fn hetero_classes(rates: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut class_rates: Vec<f64> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for &r in rates {
        if let Some(c) = class_rates.iter().position(|&x| (x - r).abs() < 1e-12) {
            counts[c] += 1;
        } else {
            class_rates.push(r);
            counts.push(1);
        }
    }
    let total = rates.len().max(1) as f64;
    let weights = counts.iter().map(|&c| c as f64 / total).collect();
    (weights, class_rates)
}

/// Builds the mean-field training environment a scenario selects.
///
/// The scenario is validated first; malformed specs come back as `Err`.
pub fn build_env(scenario: &Scenario) -> Result<Box<dyn Env>, String> {
    scenario.validate()?;
    let config = scenario.config.clone();
    // Validation already restricted non-empty plans to the engine kinds
    // that honor them (Event / Graph / JobLevel), so only those arms need
    // a faulted branch.
    let faults = scenario.faults.clone().filter(|p| !p.is_empty());
    Ok(match &scenario.engine {
        EngineSpec::PerClient | EngineSpec::Aggregate | EngineSpec::Staggered { .. } => {
            Box::new(MfcEnv::new(config))
        }
        EngineSpec::JobLevel => match faults {
            Some(plan) => Box::new(FaultyMfcEnv::new(config, plan, None)),
            None => Box::new(MfcEnv::new(config)),
        },
        EngineSpec::Hetero { rates } => Box::new(HeteroMfcEnv::new(config, rates)),
        EngineSpec::Ph { service } => Box::new(PhMfcEnv::new(config, service.build()?)),
        EngineSpec::Graph { topology, .. } => {
            // Accessible sets growing with M: the limit is the paper's
            // exact full-mesh mean field (k = None in the faulted env).
            let k = topology.limit_neighborhood_size();
            match (faults, k) {
                (Some(plan), k) => Box::new(FaultyMfcEnv::new(config, plan, k)),
                (None, None) => Box::new(MfcEnv::new(config)),
                (None, Some(k)) => Box::new(GraphMfcEnv::new(config, k)),
            }
        }
        EngineSpec::Event { job_size } => {
            // Mean-matched exponential model: a server of rate α working
            // through mean-size jobs completes them at rate α/mean —
            // exact in law for exponential sizes, a reference model for
            // the heavy-tailed laws (the finite-system evaluation stays
            // job-level either way).
            let mean = job_size.mean();
            if !(mean > 0.0 && mean.is_finite()) {
                return Err(format!(
                    "event job sizes have unusable mean {mean}; training needs a \
                     finite-mean law (Pareto shape > 1 or a bounded law)"
                ));
            }
            let mut c = config;
            c.service_rate /= mean;
            match faults {
                Some(plan) => Box::new(FaultyMfcEnv::new(c, plan, None)),
                None => Box::new(MfcEnv::new(c)),
            }
        }
    })
}

/// The heterogeneous-pool mean-field control MDP as a PPO environment.
///
/// Observation: `[length marginal (B+1), onehot(λ_t)]` — the marginal is
/// what `HeteroEngine::empirical` reports at deployment, so training and
/// deployment see the same interface (the per-class split is hidden state,
/// making this a POMDP like the paper's delayed-information setting).
/// Action: decision-rule logits over composite `(length, class)` tuples.
/// Reward: `−D_t` (minus the holding-cost extension if configured).
pub struct HeteroMfcEnv {
    config: SystemConfig,
    class_weights: Vec<f64>,
    class_rates: Vec<f64>,
    state: HeteroMeanField,
    lambda_idx: usize,
    t: usize,
    horizon: usize,
}

impl HeteroMfcEnv {
    /// Creates the environment from a per-server rate vector (deduplicated
    /// into classes via [`hetero_classes`]).
    pub fn new(config: SystemConfig, rates: &[f64]) -> Self {
        config.validate().expect("invalid system configuration");
        let (class_weights, class_rates) = hetero_classes(rates);
        let horizon = config.train_episode_len;
        let state = Self::initial(&config, &class_weights, &class_rates);
        Self { config, class_weights, class_rates, state, lambda_idx: 0, t: 0, horizon }
    }

    fn initial(config: &SystemConfig, weights: &[f64], rates: &[f64]) -> HeteroMeanField {
        let nu0 = StateDist::new(config.initial_dist.clone());
        HeteroMeanField::new(weights.to_vec(), rates.to_vec(), vec![nu0; weights.len()])
    }

    /// The overall queue-length marginal `Σ_c w_c·ν_c`.
    fn length_marginal(&self) -> StateDist {
        let zs = self.config.num_states();
        let mut probs = vec![0.0; zs];
        for (c, &w) in self.class_weights.iter().enumerate() {
            let dist = self.state.class_dist(c);
            for (z, p) in probs.iter_mut().enumerate() {
                *p += w * dist.prob(z);
            }
        }
        StateDist::new(probs)
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(
            &self.length_marginal(),
            self.lambda_idx,
            self.config.arrivals.num_levels(),
        )
    }
}

impl Env for HeteroMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.config.num_states(), self.config.arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.config.num_states() * self.class_rates.len(), self.config.d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state = Self::initial(&self.config, &self.class_weights, &self.class_rates);
        self.lambda_idx = self.config.arrivals.sample_initial(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule_states = self.config.num_states() * self.class_rates.len();
        let rule = DecisionRule::from_logits(rule_states, self.config.d, action);
        let lambda = self.config.arrivals.level_rate(self.lambda_idx);
        let detail = self.state.step(&rule, lambda, self.config.dt);
        let mut cost = detail.expected_drops;
        if self.config.holding_cost > 0.0 {
            cost += self.config.holding_cost * detail.next.mean_queue_length() * self.config.dt;
        }
        self.state = detail.next;
        self.lambda_idx = self.config.arrivals.step(self.lambda_idx, rng);
        self.t += 1;
        StepResult { obs: self.observe(), reward: -cost, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self {
            config: self.config.clone(),
            class_weights: self.class_weights.clone(),
            class_rates: self.class_rates.clone(),
            state: Self::initial(&self.config, &self.class_weights, &self.class_rates),
            lambda_idx: 0,
            t: 0,
            horizon: self.horizon,
        })
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

/// The degree-indexed graph mean-field control MDP as a PPO environment
/// (the locality-constrained extension; see
/// [`mflb_core::graph_meanfield`]).
///
/// Observation and action are exactly the homogeneous model's —
/// `[ν_t (B+1), onehot(λ_t)]` in, decision-rule logits over length
/// tuples out — so graph checkpoints share the homogeneous
/// [`PolicyShape`] and a net trained here deploys against
/// `GraphEngine::empirical` unchanged. Only the *dynamics* differ: the
/// per-state arrival rates use the annealed `k`-neighborhood closure
/// instead of the Eq. 22 full-mesh integral, which is what teaches the
/// policy that herding onto globally short queues is capped by each
/// dispatcher's catchment.
pub struct GraphMfcEnv {
    config: SystemConfig,
    /// Closed-neighborhood size `k` in the `M → ∞` limit.
    k: usize,
    nu: StateDist,
    lambda_idx: usize,
    t: usize,
    horizon: usize,
}

impl GraphMfcEnv {
    /// Creates the environment for a limit neighborhood size `k ≥ 1`
    /// (from [`mflb_core::Topology::limit_neighborhood_size`]).
    pub fn new(config: SystemConfig, k: usize) -> Self {
        config.validate().expect("invalid system configuration");
        assert!(k >= 1, "neighborhood size must be at least 1");
        let horizon = config.train_episode_len;
        let nu = StateDist::new(config.initial_dist.clone());
        Self { config, k, nu, lambda_idx: 0, t: 0, horizon }
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(&self.nu, self.lambda_idx, self.config.arrivals.num_levels())
    }
}

impl Env for GraphMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.config.num_states(), self.config.arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.config.num_states(), self.config.d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.nu = StateDist::new(self.config.initial_dist.clone());
        self.lambda_idx = self.config.arrivals.sample_initial(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule = DecisionRule::from_logits(self.config.num_states(), self.config.d, action);
        let lambda = self.config.arrivals.level_rate(self.lambda_idx);
        let detail = graph_mean_field_step(
            &self.nu,
            &rule,
            lambda,
            self.config.service_rate,
            self.config.dt,
            self.k,
        );
        let mut cost = detail.expected_drops;
        if self.config.holding_cost > 0.0 {
            cost +=
                self.config.holding_cost * detail.next_dist.mean_queue_length() * self.config.dt;
        }
        self.nu = detail.next_dist;
        self.lambda_idx = self.config.arrivals.step(self.lambda_idx, rng);
        self.t += 1;
        StepResult { obs: self.observe(), reward: -cost, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self::new(self.config.clone(), self.k))
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

/// The homogeneous mean-field control MDP degraded by a [`FaultPlan`] —
/// the annealed (`M → ∞`) limit of the finite faulted engines.
///
/// Per epoch `[t₀, t₀ + Δt)` the plan enters the dynamics as:
///
/// * **Crashes** — the per-queue Up/Down renewal becomes a *two-pool*
///   mean field: the length distribution splits into an Up pool (full
///   service) and a Down pool (service 0), with length-preserving mass
///   exchange at the renewal rates (`1 − e^{−Δt/mttf}` of the Up pool
///   fails, `1 − e^{−Δt/mttr}` of the Down pool recovers each epoch).
///   Both pools *receive* arrivals at the same length-indexed rates —
///   matching the finite engines, where routing cannot see liveness,
///   only lengths — so crashed queues lengthen, drop, and drag the
///   observable mixture right. This bimodal limit (not a uniform
///   service-rate discount) is what makes sharp length-avoidance pay
///   off in training the way it does against the real faulted engines.
/// * **Stragglers** — the pool-mean window factor
///   (`Σ_j straggler_factor(j)/M`) scales service the same way.
/// * **Overload bursts** — [`FaultPlan::arrival_factor`] scales `λ_t`.
/// * **Observation faults** — each epoch the snapshot refresh is dropped
///   with probability `drop_prob` (one env-RNG draw); the policy then
///   keeps observing the *stale* distribution while the true mean field
///   moves on. This is hidden state — the same POMDP structure as the
///   paper's delayed-information setting — and is what teaches a
///   fault-aware policy to hedge instead of trusting old snapshots.
///
/// Observation/action dims are the homogeneous model's, so
/// [`PolicyShape`] is unchanged: fault-trained checkpoints deploy against
/// any engine the fault-free ones can. With `k = Some(·)` the transition
/// uses the degree-indexed graph closure instead of the full-mesh
/// integral ([`GraphMfcEnv`]'s dynamics, degraded the same way).
pub struct FaultyMfcEnv {
    config: SystemConfig,
    plan: FaultPlan,
    /// `Some(k)`: degree-indexed graph closure; `None`: full-mesh Eq. 22.
    k: Option<usize>,
    /// Length-distribution mass of the Up pool (sums to the up fraction).
    up: Vec<f64>,
    /// Length-distribution mass of the Down (crashed) pool.
    down: Vec<f64>,
    /// What the policy sees — the mixture as of the last *successful*
    /// refresh.
    observed: StateDist,
    lambda_idx: usize,
    t: usize,
    horizon: usize,
}

impl FaultyMfcEnv {
    /// Creates the environment for a validated plan (panics on an invalid
    /// one — [`build_env`] goes through `Scenario::validate` first and
    /// reports an `Err` instead).
    pub fn new(config: SystemConfig, plan: FaultPlan, k: Option<usize>) -> Self {
        config.validate().expect("invalid system configuration");
        plan.validate_for(config.num_queues).expect("invalid fault plan");
        if let Some(k) = k {
            assert!(k >= 1, "neighborhood size must be at least 1");
        }
        let horizon = config.train_episode_len;
        let up = config.initial_dist.clone();
        let down = vec![0.0; up.len()];
        let observed = StateDist::new(config.initial_dist.clone());
        Self { config, plan, k, up, down, observed, lambda_idx: 0, t: 0, horizon }
    }

    /// Pool-mean straggler factor `Σ_j f_j(t₀)/M` for the epoch.
    fn mean_straggler_factor(&self, t0: f64) -> f64 {
        let m = self.config.num_queues.max(1);
        (0..m).map(|j| self.plan.straggler_factor(j, t0, self.config.dt)).sum::<f64>() / m as f64
    }

    /// The observable length distribution: the Up + Down mixture (routing
    /// and snapshots see lengths, never liveness).
    fn mixture(&self) -> StateDist {
        let total: f64 = self.up.iter().sum::<f64>() + self.down.iter().sum::<f64>();
        StateDist::new(self.up.iter().zip(&self.down).map(|(u, d)| (u + d) / total).collect())
    }

    /// Advances one pool's mass through the shared per-state arrival
    /// rates at its own service rate; returns the pool's expected drops.
    fn advance_pool(pool: &mut [f64], rates: &[f64], service: f64, dt: f64) -> f64 {
        let mass: f64 = pool.iter().sum();
        if mass <= 1e-12 {
            return 0.0;
        }
        let cond = StateDist::new(pool.iter().map(|p| p / mass).collect());
        let step = mean_field_step_with_rates(&cond, rates.to_vec(), service, dt);
        for (p, z) in pool.iter_mut().zip(0..) {
            *p = mass * step.next_dist.prob(z);
        }
        mass * step.expected_drops
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(&self.observed, self.lambda_idx, self.config.arrivals.num_levels())
    }
}

impl Env for FaultyMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.config.num_states(), self.config.arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.config.num_states(), self.config.d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.up = self.config.initial_dist.clone();
        self.down = vec![0.0; self.up.len()];
        self.observed = StateDist::new(self.config.initial_dist.clone());
        self.lambda_idx = self.config.arrivals.sample_initial(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let dt = self.config.dt;
        let t0 = self.t as f64 * dt;
        let rule = DecisionRule::from_logits(self.config.num_states(), self.config.d, action);
        let lambda =
            self.config.arrivals.level_rate(self.lambda_idx) * self.plan.arrival_factor(t0, dt);
        // Crash renewal exchange: a length-preserving mass transfer
        // between the Up and Down pools at the per-epoch fail/recover
        // probabilities of the finite engines' per-queue renewals.
        if let Some(c) = &self.plan.crashes {
            let p_fail = 1.0 - (-dt / c.mttf).exp();
            let p_rec = 1.0 - (-dt / c.mttr).exp();
            for (u, d) in self.up.iter_mut().zip(&mut self.down) {
                let fail = *u * p_fail;
                let rec = *d * p_rec;
                *u += rec - fail;
                *d += fail - rec;
            }
        }
        // Routing sees the mixture — lengths only, never liveness — so
        // both pools share one length-indexed arrival-rate vector.
        let mixture = self.mixture();
        let rates = match self.k {
            None => per_state_arrival_rates(&mixture, &rule, lambda),
            Some(k) => graph_arrival_rates(&mixture, &rule, lambda, k),
        };
        let service = self.config.service_rate * self.mean_straggler_factor(t0);
        let mut cost = Self::advance_pool(&mut self.up, &rates, service, dt)
            + Self::advance_pool(&mut self.down, &rates, 0.0, dt);
        if self.config.holding_cost > 0.0 {
            cost += self.config.holding_cost * self.mixture().mean_queue_length() * self.config.dt;
        }
        // One env-RNG draw decides the refresh whenever an observation
        // fault is configured; on a drop the policy keeps seeing the old
        // snapshot (staleness compounds across consecutive drops).
        let dropped = match &self.plan.observation {
            Some(o) if o.drop_prob > 0.0 => rng.gen::<f64>() < o.drop_prob,
            _ => false,
        };
        if !dropped {
            self.observed = self.mixture();
        }
        self.lambda_idx = self.config.arrivals.step(self.lambda_idx, rng);
        self.t += 1;
        StepResult { obs: self.observe(), reward: -cost, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self::new(self.config.clone(), self.plan.clone(), self.k))
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

/// The phase-type-service mean-field control MDP as a PPO environment
/// (§5 "non-exponential service times").
///
/// Observation: `[length marginal (B+1), onehot(λ_t)]`; the joint
/// `(length, phase)` distribution is hidden state. Action: decision-rule
/// logits over plain length tuples, as in the homogeneous model.
pub struct PhMfcEnv {
    mdp: PhMeanFieldMdp,
    state: PhMfState,
    t: usize,
    horizon: usize,
}

impl PhMfcEnv {
    /// Creates the environment for a service-time law.
    pub fn new(config: SystemConfig, service: PhaseType) -> Self {
        let horizon = config.train_episode_len;
        let mdp = PhMeanFieldMdp::new(config, service);
        let state = PhMfState {
            dist: mflb_core::PhDist::all_empty(mdp.config().buffer, mdp.service().num_phases()),
            lambda_idx: 0,
        };
        Self { mdp, state, t: 0, horizon }
    }

    fn observe(&self) -> Vec<f64> {
        encode_observation(
            &self.state.dist.length_marginal(),
            self.state.lambda_idx,
            self.mdp.config().arrivals.num_levels(),
        )
    }
}

impl Env for PhMfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.mdp.config().num_states(), self.mdp.config().arrivals.num_levels())
    }

    fn act_dim(&self) -> usize {
        action_dim(self.mdp.config().num_states(), self.mdp.config().d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state = self.mdp.initial_state(rng);
        self.t = 0;
        self.observe()
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule =
            DecisionRule::from_logits(self.mdp.config().num_states(), self.mdp.config().d, action);
        let (next, reward, _) = self.mdp.step(&self.state, &rule, rng);
        self.state = next;
        self.t += 1;
        StepResult { obs: self.observe(), reward, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self::new(self.mdp.config().clone(), self.mdp.service().clone()))
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_sim::ServiceLaw;
    use rand::SeedableRng;

    fn base_config() -> SystemConfig {
        let mut c = SystemConfig::paper().with_size(100, 10).with_dt(5.0);
        c.train_episode_len = 10;
        c
    }

    fn hetero_scenario() -> Scenario {
        let mut rates = vec![1.6; 5];
        rates.extend(vec![0.4; 5]);
        Scenario::new(base_config(), EngineSpec::Hetero { rates })
    }

    #[test]
    fn shapes_per_engine_kind() {
        let homog = PolicyShape::for_scenario(&Scenario::new(base_config(), EngineSpec::Aggregate));
        assert_eq!((homog.obs_states, homog.rule_states), (6, 6));
        assert_eq!(homog.obs_dim(), 8);
        assert_eq!(homog.act_dim(), 72);

        let het = PolicyShape::for_scenario(&hetero_scenario());
        assert_eq!((het.obs_states, het.rule_states), (6, 12));
        assert_eq!(het.obs_dim(), 8);
        assert_eq!(het.act_dim(), 12 * 12 * 2);

        let ph = PolicyShape::for_scenario(&Scenario::new(
            base_config(),
            EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
        ));
        assert_eq!((ph.obs_states, ph.rule_states), (6, 6));
    }

    #[test]
    fn built_envs_match_their_shapes_and_run_episodes() {
        let scenarios = vec![
            Scenario::new(base_config(), EngineSpec::Aggregate),
            hetero_scenario(),
            Scenario::new(
                base_config(),
                EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
            ),
            Scenario::new(
                base_config(),
                EngineSpec::Event {
                    job_size: mflb_core::JobSizeLaw::BoundedPareto {
                        shape: 1.5,
                        lo: 0.2,
                        hi: 20.0,
                    },
                },
            ),
        ];
        for scenario in scenarios {
            let shape = PolicyShape::for_scenario(&scenario);
            let mut env = build_env(&scenario).expect("valid scenario");
            assert_eq!(env.obs_dim(), shape.obs_dim());
            assert_eq!(env.act_dim(), shape.act_dim());
            assert_eq!(env.horizon_hint(), Some(10));
            let mut rng = StdRng::seed_from_u64(1);
            let obs = env.reset(&mut rng);
            assert_eq!(obs.len(), shape.obs_dim());
            let action = vec![0.0; env.act_dim()];
            let mut steps = 0;
            loop {
                let r = env.step(&action, &mut rng);
                steps += 1;
                assert!(r.reward <= 0.0, "reward is minus drops");
                let mass: f64 = r.obs[..shape.obs_states].iter().sum();
                assert!((mass - 1.0).abs() < 1e-8, "length marginal stays a distribution");
                if r.done {
                    break;
                }
            }
            assert_eq!(steps, 10);
        }
    }

    #[test]
    fn single_class_hetero_env_matches_homogeneous_env() {
        // One rate class: the hetero mean field collapses to the Eq. 20–28
        // model, and both envs consume one RNG draw per step, so identical
        // seeds must give identical rewards.
        let cfg = base_config();
        let mut hetero = HeteroMfcEnv::new(cfg.clone(), &[1.0; 10]);
        let mut homog = MfcEnv::new(cfg);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        hetero.reset(&mut rng_a);
        homog.reset(&mut rng_b);
        let action = vec![0.3; homog.act_dim()];
        for _ in 0..10 {
            let a = hetero.step(&action, &mut rng_a);
            let b = homog.step(&action, &mut rng_b);
            assert!((a.reward - b.reward).abs() < 1e-9, "{} vs {}", a.reward, b.reward);
        }
    }

    #[test]
    fn build_env_rejects_malformed_scenarios() {
        let bad = Scenario::new(base_config(), EngineSpec::Hetero { rates: vec![1.0; 3] });
        assert!(build_env(&bad).is_err(), "pool size mismatch must be rejected");
        let bad_top = Scenario::new(
            base_config(),
            EngineSpec::Graph {
                topology: mflb_core::Topology::Ring { radius: 7 },
                shard_size: None,
            },
        );
        assert!(build_env(&bad_top).is_err(), "over-wide ring must be rejected");
        let infinite_mean = Scenario::new(
            base_config(),
            EngineSpec::Event {
                job_size: mflb_core::JobSizeLaw::Pareto { shape: 0.9, scale: 1.0 },
            },
        );
        let err = build_env(&infinite_mean).err().expect("infinite-mean law must be rejected");
        assert!(err.contains("mean"), "infinite-mean law must be rejected readably: {err}");
    }

    #[test]
    fn graph_env_shares_the_homogeneous_policy_shape() {
        let scenario = Scenario::new(
            base_config(),
            EngineSpec::Graph {
                topology: mflb_core::Topology::Ring { radius: 2 },
                shard_size: None,
            },
        );
        let shape = PolicyShape::for_scenario(&scenario);
        assert_eq!((shape.obs_states, shape.rule_states), (6, 6));
        let mut env = build_env(&scenario).expect("valid scenario");
        assert_eq!(env.obs_dim(), shape.obs_dim());
        assert_eq!(env.act_dim(), shape.act_dim());
        let mut rng = StdRng::seed_from_u64(1);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.len(), shape.obs_dim());
        let action = vec![0.0; env.act_dim()];
        let r = env.step(&action, &mut rng);
        assert!(r.reward <= 0.0);
        let mass: f64 = r.obs[..6].iter().sum();
        assert!((mass - 1.0).abs() < 1e-8);
    }

    #[test]
    fn full_mesh_graph_scenario_trains_in_the_exact_mean_field() {
        // FullMesh has no finite limit degree, so build_env must select the
        // exact Eq. 20–28 environment: same RNG consumption, same rewards
        // as the aggregate scenario's env.
        let graph = Scenario::new(
            base_config(),
            EngineSpec::Graph { topology: mflb_core::Topology::FullMesh, shard_size: None },
        );
        let agg = Scenario::new(base_config(), EngineSpec::Aggregate);
        let mut a = build_env(&graph).unwrap();
        let mut b = build_env(&agg).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        a.reset(&mut rng_a);
        b.reset(&mut rng_b);
        let action = vec![0.2; a.act_dim()];
        for _ in 0..10 {
            let ra = a.step(&action, &mut rng_a);
            let rb = b.step(&action, &mut rng_b);
            assert!((ra.reward - rb.reward).abs() < 1e-12, "{} vs {}", ra.reward, rb.reward);
        }
    }

    #[test]
    fn huge_neighborhoods_approach_the_homogeneous_env() {
        // k = 10_000: the annealed closure is numerically indistinguishable
        // from the full-mesh model, so per-step rewards must agree tightly.
        let cfg = base_config();
        let mut graph = GraphMfcEnv::new(cfg.clone(), 10_000);
        let mut homog = MfcEnv::new(cfg);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        graph.reset(&mut rng_a);
        homog.reset(&mut rng_b);
        let action = vec![0.3; homog.act_dim()];
        for _ in 0..10 {
            let a = graph.step(&action, &mut rng_a);
            let b = homog.step(&action, &mut rng_b);
            assert!((a.reward - b.reward).abs() < 1e-4, "{} vs {}", a.reward, b.reward);
        }
    }

    #[test]
    fn hetero_class_derivation_matches_first_appearance_order() {
        let (w, r) = hetero_classes(&[1.6, 0.4, 1.6, 0.4, 0.4]);
        assert_eq!(r, vec![1.6, 0.4]);
        assert!((w[0] - 0.4).abs() < 1e-12 && (w[1] - 0.6).abs() < 1e-12);
    }

    fn crashy_plan() -> mflb_core::FaultPlan {
        let mut p = mflb_core::FaultPlan::empty();
        p.crashes = Some(mflb_core::CrashFaults { mttf: 10.0, mttr: 5.0 });
        p
    }

    #[test]
    fn faulted_scenarios_build_the_faulty_env_with_unchanged_shapes() {
        // FaultyMfcEnv must keep the homogeneous PolicyShape — a
        // fault-trained checkpoint deploys anywhere a fault-free one can.
        let scenario =
            Scenario::new(base_config(), EngineSpec::JobLevel).with_faults(crashy_plan());
        let shape = PolicyShape::for_scenario(&scenario);
        let mut env = build_env(&scenario).expect("valid faulted scenario");
        assert_eq!(env.obs_dim(), shape.obs_dim());
        assert_eq!(env.act_dim(), shape.act_dim());
        let mut rng = StdRng::seed_from_u64(3);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.len(), shape.obs_dim());
        let action = vec![0.0; env.act_dim()];
        let mut steps = 0;
        loop {
            let r = env.step(&action, &mut rng);
            steps += 1;
            assert!(r.reward <= 0.0, "reward is minus drops");
            let mass: f64 = r.obs[..shape.obs_states].iter().sum();
            assert!((mass - 1.0).abs() < 1e-8, "observed dist stays a distribution");
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 10);
    }

    #[test]
    fn crashes_strictly_increase_mean_field_drops() {
        // Same seed, same (uniform) actions: parking ~1/3 of the pool in
        // the zero-service Down pool must cost strictly more drops.
        let cfg = base_config();
        let mut faulted = FaultyMfcEnv::new(cfg.clone(), crashy_plan(), None);
        let mut pristine = MfcEnv::new(cfg);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        faulted.reset(&mut rng_a);
        pristine.reset(&mut rng_b);
        let action = vec![0.0; pristine.act_dim()];
        let (mut cost_f, mut cost_p) = (0.0, 0.0);
        for _ in 0..10 {
            cost_f -= faulted.step(&action, &mut rng_a).reward;
            cost_p -= pristine.step(&action, &mut rng_b).reward;
        }
        assert!(
            cost_f > cost_p,
            "crash-degraded service must drop more: faulted {cost_f} vs pristine {cost_p}"
        );
    }

    #[test]
    fn certain_observation_drops_freeze_the_policy_snapshot() {
        // drop_prob = 1: every refresh fails, so the observed length
        // distribution must stay the initial ν₀ while the true mean field
        // (and hence the reward) keeps moving.
        let mut plan = mflb_core::FaultPlan::empty();
        plan.observation = Some(mflb_core::ObservationFaults { drop_prob: 1.0 });
        let cfg = base_config();
        let zs = cfg.num_states();
        let nu0: Vec<f64> = cfg.initial_dist.clone();
        let mut env = FaultyMfcEnv::new(cfg, plan, None);
        let mut rng = StdRng::seed_from_u64(4);
        env.reset(&mut rng);
        let action = vec![0.0; env.act_dim()];
        let mut saw_drops = false;
        for _ in 0..10 {
            let r = env.step(&action, &mut rng);
            for (z, &p) in nu0.iter().enumerate().take(zs) {
                assert!((r.obs[z] - p).abs() < 1e-12, "snapshot must stay frozen at ν₀");
            }
            saw_drops |= r.reward < 0.0;
        }
        assert!(saw_drops, "the true mean field must keep evolving behind the stale snapshot");
    }

    #[test]
    fn faulted_graph_scenarios_use_the_degraded_graph_closure() {
        let scenario = Scenario::new(
            base_config(),
            EngineSpec::Graph {
                topology: mflb_core::Topology::Ring { radius: 2 },
                shard_size: None,
            },
        )
        .with_faults(crashy_plan());
        let mut env = build_env(&scenario).expect("valid faulted graph scenario");
        let mut rng = StdRng::seed_from_u64(6);
        env.reset(&mut rng);
        let r = env.step(&vec![0.0; env.act_dim()], &mut rng);
        assert!(r.reward <= 0.0);
        let mass: f64 = r.obs[..6].iter().sum();
        assert!((mass - 1.0).abs() < 1e-8);
    }
}

//! The MFC-MDP as a PPO environment.
//!
//! Observation: `[ν_t (B+1 dims), onehot(λ_t)]` (the canonical encoding
//! from `mflb_core::mdp`). Action: a continuous vector of `|Z|^d·d`
//! decision-rule logits, softmax-normalized per observation tuple into
//! `h_t` — the paper's "manual normalization" parameterization (§4).
//! Reward: `−D_t` (expected per-queue drops of the epoch). Episodes last
//! `horizon` decision epochs (Table 1: T = 500 for training).

use crate::env::{Env, StepResult};
use mflb_core::mdp::{action_dim, encode_observation, observation_dim};
use mflb_core::{DecisionRule, MeanFieldMdp, MfState, SystemConfig};
use rand::rngs::StdRng;

/// The mean-field control environment.
pub struct MfcEnv {
    mdp: MeanFieldMdp,
    state: MfState,
    t: usize,
    horizon: usize,
    num_levels: usize,
}

impl MfcEnv {
    /// Creates the environment with the configured training horizon.
    pub fn new(config: SystemConfig) -> Self {
        let horizon = config.train_episode_len;
        Self::with_horizon(config, horizon)
    }

    /// Creates the environment with an explicit episode horizon.
    pub fn with_horizon(config: SystemConfig, horizon: usize) -> Self {
        assert!(horizon >= 1);
        let num_levels = config.arrivals.num_levels();
        let mdp = MeanFieldMdp::new(config);
        let state = mdp.initial_state_with_lambda(0);
        Self { mdp, state, t: 0, horizon, num_levels }
    }

    /// The wrapped MDP (evaluation helpers).
    pub fn mdp(&self) -> &MeanFieldMdp {
        &self.mdp
    }

    /// Decodes a raw action vector into the decision rule it induces.
    pub fn decode_action(&self, action: &[f64]) -> DecisionRule {
        let cfg = self.mdp.config();
        DecisionRule::from_logits(cfg.num_states(), cfg.d, action)
    }
}

impl Env for MfcEnv {
    fn obs_dim(&self) -> usize {
        observation_dim(self.mdp.config().num_states(), self.num_levels)
    }

    fn act_dim(&self) -> usize {
        action_dim(self.mdp.config().num_states(), self.mdp.config().d)
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        self.state = self.mdp.initial_state(rng);
        self.t = 0;
        encode_observation(&self.state.dist, self.state.lambda_idx, self.num_levels)
    }

    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult {
        let rule = self.decode_action(action);
        let (next, reward, _) = self.mdp.step(&self.state, &rule, rng);
        self.state = next;
        self.t += 1;
        StepResult {
            obs: encode_observation(&self.state.dist, self.state.lambda_idx, self.num_levels),
            reward,
            done: self.t >= self.horizon,
        }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(Self::with_horizon(self.mdp.config().clone(), self.horizon))
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn env() -> MfcEnv {
        MfcEnv::with_horizon(SystemConfig::paper().with_dt(5.0), 20)
    }

    #[test]
    fn dimensions_match_paper_shapes() {
        let e = env();
        assert_eq!(e.obs_dim(), 6 + 2);
        assert_eq!(e.act_dim(), 36 * 2);
    }

    #[test]
    fn episode_runs_to_horizon() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = e.reset(&mut rng);
        assert_eq!(obs.len(), 8);
        // ν₀ = δ₀ encoding.
        assert_eq!(obs[0], 1.0);
        let zero_action = vec![0.0; e.act_dim()];
        let mut steps = 0;
        loop {
            let r = e.step(&zero_action, &mut rng);
            steps += 1;
            assert!(r.reward <= 0.0, "reward is minus drops");
            assert!(r.obs.len() == 8);
            let mass: f64 = r.obs[..6].iter().sum();
            assert!((mass - 1.0).abs() < 1e-9, "ν stays a distribution");
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 20);
    }

    #[test]
    fn zero_logits_act_like_mf_rnd() {
        // All-zero logits -> uniform rule; the first-step reward must match
        // the MF-RND step from ν₀ under the sampled λ.
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(2);
        e.reset(&mut rng);
        let lam_idx = e.state.lambda_idx;
        let lam = e.mdp.config().arrivals.level_rate(lam_idx);
        let expected =
            mflb_core::mean_field_step(&e.state.dist, &DecisionRule::uniform(6, 2), lam, 1.0, 5.0)
                .expected_drops;
        let r = e.step(&vec![0.0; e.act_dim()], &mut rng);
        assert!((r.reward + expected).abs() < 1e-12);
    }

    #[test]
    fn decode_action_shape() {
        let e = env();
        let rule = e.decode_action(&vec![0.25; e.act_dim()]);
        assert_eq!(rule.num_rows(), 36);
        for row in 0..36 {
            assert!((rule.prob_by_row(row, 0) - 0.5).abs() < 1e-12);
        }
    }
}

//! Cross-entropy method (CEM) over policy parameters — the
//! derivative-free baseline of the learner ablation.
//!
//! CEM maintains a diagonal Gaussian over the *parameter vector* of a
//! deterministic policy network. Each generation samples a population,
//! scores every candidate by Monte-Carlo episode returns (all candidates
//! share the same episode seeds — common random numbers — so ranking
//! noise cancels), refits the Gaussian to the elite fraction, and adds a
//! decaying exploration floor to the standard deviations.
//!
//! Strengths for the MFC MDP: no gradient plumbing, immune to the
//! credit-assignment horizon, embarrassingly parallel (candidates are
//! evaluated on crossbeam worker threads). Weakness: sample complexity
//! grows with the parameter count — which is exactly the trade-off the
//! `ablation_learners` experiment quantifies against PPO/REINFORCE.

use crate::env::Env;
use mflb_nn::{standard_normal, Activation, Mlp};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// CEM hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CemConfig {
    /// Candidates per generation.
    pub population: usize,
    /// Fraction of the population refit as elites.
    pub elite_frac: f64,
    /// Initial parameter standard deviation.
    pub init_std: f64,
    /// Additive exploration noise at generation `g`:
    /// `extra_noise / (g + 1)` is added to every refit std.
    pub extra_noise: f64,
    /// Lower bound on every std (keeps exploration alive).
    pub min_std: f64,
    /// Episodes averaged per candidate evaluation.
    pub episodes_per_eval: usize,
    /// Hidden layer widths of the policy network.
    pub hidden: Vec<usize>,
    /// Evaluation worker threads (0 → available parallelism).
    pub threads: usize,
}

impl Default for CemConfig {
    fn default() -> Self {
        Self {
            population: 32,
            elite_frac: 0.25,
            init_std: 0.5,
            extra_noise: 0.1,
            min_std: 1e-3,
            episodes_per_eval: 2,
            hidden: vec![32, 32],
            threads: 0,
        }
    }
}

/// Per-generation statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CemStats {
    /// Generation counter (1-based).
    pub generation: u64,
    /// Cumulative environment steps.
    pub total_steps: u64,
    /// Best candidate return this generation.
    pub best_return: f64,
    /// Mean return of the elite set.
    pub elite_mean_return: f64,
    /// Return of the current distribution mean (evaluated once).
    pub mean_candidate_return: f64,
    /// Average parameter standard deviation (exploration level).
    pub mean_std: f64,
}

/// The CEM trainer.
pub struct CemTrainer {
    cfg: CemConfig,
    template: Mlp,
    mean: Vec<f64>,
    std: Vec<f64>,
    env: Box<dyn Env>,
    total_steps: u64,
    generation: u64,
    seed: u64,
}

impl CemTrainer {
    /// Creates a trainer for environments shaped like `prototype`.
    pub fn new(prototype: &dyn Env, cfg: CemConfig, seed: u64) -> Self {
        assert!(cfg.population >= 2);
        assert!((0.0..=1.0).contains(&cfg.elite_frac) && cfg.elite_frac > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sizes = vec![prototype.obs_dim()];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(prototype.act_dim());
        let template = Mlp::new(&sizes, Activation::Tanh, &mut rng);
        let mean = template.params_vec();
        let std = vec![cfg.init_std; mean.len()];
        Self {
            cfg,
            template,
            mean,
            std,
            env: prototype.boxed_clone(),
            total_steps: 0,
            generation: 0,
            seed,
        }
    }

    /// Number of searched parameters.
    pub fn num_params(&self) -> usize {
        self.mean.len()
    }

    /// Cumulative environment steps.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// The current mean policy as a network.
    pub fn policy_net(&self) -> Mlp {
        let mut net = self.template.clone();
        net.read_params(&self.mean);
        net
    }

    /// Deterministic action of the current mean policy.
    pub fn deterministic_action(&self, obs: &[f64]) -> Vec<f64> {
        self.policy_net().forward_one(obs)
    }

    /// Scores one parameter vector: mean return over
    /// `episodes_per_eval` episodes with the given per-generation seeds.
    fn evaluate(
        env: &mut dyn Env,
        template: &Mlp,
        params: &[f64],
        episode_seeds: &[u64],
    ) -> (f64, u64) {
        let mut net = template.clone();
        net.read_params(params);
        let mut total = 0.0;
        let mut steps = 0u64;
        for &ep_seed in episode_seeds {
            let mut rng = StdRng::seed_from_u64(ep_seed);
            let mut obs = env.reset(&mut rng);
            loop {
                let action = net.forward_one(&obs);
                let r = env.step(&action, &mut rng);
                total += r.reward;
                steps += 1;
                obs = r.obs;
                if r.done {
                    break;
                }
            }
        }
        (total / episode_seeds.len() as f64, steps)
    }

    /// Runs one CEM generation.
    pub fn train_iteration(&mut self, rng: &mut StdRng) -> CemStats {
        self.generation += 1;
        let pop = self.cfg.population;
        let dim = self.mean.len();

        // Common random numbers: every candidate sees the same episodes.
        let episode_seeds: Vec<u64> = (0..self.cfg.episodes_per_eval)
            .map(|e| self.seed ^ (self.generation * 1000 + e as u64))
            .collect();

        // Sample the population (mean itself is evaluated as candidate 0,
        // elitism for free and a progress probe).
        let mut candidates: Vec<Vec<f64>> = Vec::with_capacity(pop);
        candidates.push(self.mean.clone());
        for _ in 1..pop {
            let mut theta = vec![0.0; dim];
            for k in 0..dim {
                theta[k] = self.mean[k] + self.std[k] * standard_normal(rng);
            }
            candidates.push(theta);
        }

        // Parallel evaluation; results slotted by candidate index so the
        // outcome is independent of scheduling.
        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.cfg.threads
        }
        .min(pop);
        let scores: Mutex<Vec<(f64, u64)>> = Mutex::new(vec![(f64::NAN, 0); pop]);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let template = &self.template;
        let seeds = &episode_seeds;
        let cands = &candidates;
        // Env is Send but not Sync: clone per worker on this thread, then
        // move each clone into its worker.
        let worker_envs: Vec<Box<dyn Env>> = (0..threads).map(|_| self.env.boxed_clone()).collect();
        crossbeam::scope(|scope| {
            for mut env in worker_envs {
                let counter = &counter;
                let scores = &scores;
                scope.spawn(move |_| loop {
                    let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= pop {
                        break;
                    }
                    let result = Self::evaluate(env.as_mut(), template, &cands[i], seeds);
                    scores.lock()[i] = result;
                });
            }
        })
        .expect("CEM evaluation worker panicked");
        let scores = scores.into_inner();
        self.total_steps += scores.iter().map(|&(_, s)| s).sum::<u64>();

        // Elite refit.
        let n_elite = ((pop as f64 * self.cfg.elite_frac).round() as usize).clamp(1, pop);
        let mut order: Vec<usize> = (0..pop).collect();
        order.sort_by(|&a, &b| scores[b].0.partial_cmp(&scores[a].0).unwrap());
        let elites = &order[..n_elite];
        let extra = self.cfg.extra_noise / self.generation as f64;
        for k in 0..dim {
            let m: f64 = elites.iter().map(|&i| candidates[i][k]).sum::<f64>() / n_elite as f64;
            let v: f64 = elites
                .iter()
                .map(|&i| (candidates[i][k] - m) * (candidates[i][k] - m))
                .sum::<f64>()
                / n_elite as f64;
            self.mean[k] = m;
            self.std[k] = (v.sqrt() + extra).max(self.cfg.min_std);
        }

        CemStats {
            generation: self.generation,
            total_steps: self.total_steps,
            best_return: scores[order[0]].0,
            elite_mean_return: elites.iter().map(|&i| scores[i].0).sum::<f64>() / n_elite as f64,
            mean_candidate_return: scores[0].0,
            mean_std: self.std.iter().sum::<f64>() / dim as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ToyControlEnv;

    #[test]
    fn cem_improves_on_toy_control() {
        let env = ToyControlEnv::new(10);
        let cfg = CemConfig {
            population: 24,
            episodes_per_eval: 2,
            hidden: vec![8],
            ..CemConfig::default()
        };
        let mut trainer = CemTrainer::new(&env, cfg, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for g in 0..25 {
            let stats = trainer.train_iteration(&mut rng);
            if g == 0 {
                first = stats.mean_candidate_return;
            }
            last = stats.mean_candidate_return;
        }
        // Losses shrink towards 0 (optimal return for this task is ≈ 0).
        assert!(last > first && last > -0.05, "CEM failed to improve: {first} -> {last}");
        let a_pos = trainer.deterministic_action(&[1.0])[0];
        let a_neg = trainer.deterministic_action(&[-1.0])[0];
        assert!(a_pos < -0.2, "action at x=1 should be negative, got {a_pos}");
        assert!(a_neg > 0.2, "action at x=-1 should be positive, got {a_neg}");
    }

    #[test]
    fn exploration_std_decays_but_respects_floor() {
        let env = ToyControlEnv::new(5);
        let cfg =
            CemConfig { population: 16, min_std: 0.05, hidden: vec![4], ..CemConfig::default() };
        let mut trainer = CemTrainer::new(&env, cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s1 = trainer.train_iteration(&mut rng);
        let mut last = s1.mean_std;
        for _ in 0..10 {
            last = trainer.train_iteration(&mut rng).mean_std;
        }
        assert!(last < s1.mean_std, "std should shrink: {} -> {last}", s1.mean_std);
        assert!(trainer.std.iter().all(|&s| s >= 0.05 - 1e-12), "floor violated");
    }

    #[test]
    fn thread_count_does_not_change_the_search() {
        let env = ToyControlEnv::new(5);
        let run = |threads: usize| {
            let cfg =
                CemConfig { population: 12, hidden: vec![4], threads, ..CemConfig::default() };
            let mut t = CemTrainer::new(&env, cfg, 7);
            let mut rng = StdRng::seed_from_u64(8);
            let mut v = Vec::new();
            for _ in 0..3 {
                let s = t.train_iteration(&mut rng);
                v.push((s.best_return, s.elite_mean_return));
            }
            v
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn elite_mean_is_at_least_population_best_bound() {
        let env = ToyControlEnv::new(5);
        let cfg = CemConfig { population: 10, hidden: vec![4], ..CemConfig::default() };
        let mut trainer = CemTrainer::new(&env, cfg, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let s = trainer.train_iteration(&mut rng);
        assert!(s.best_return >= s.elite_mean_return);
        assert!(s.total_steps > 0);
        assert_eq!(s.generation, 1);
    }
}

//! Checkpoint evaluation: deploy a trained policy into the scenario's
//! finite-N system and compare it against the classical baselines.
//!
//! Mirrors the paper's Fig. 4–6 protocol: for each system size `M` (with
//! `N = M²`, the paper's scaling) the learned policy, JSQ(d), RND and the
//! tuned softmin run `n` independent Monte-Carlo episodes of the scenario's
//! finite engine over the evaluation horizon `T_e = round(eval_time/Δt)`,
//! and the report holds mean cumulative per-queue drops with 95% confidence
//! half-widths. Baselines are length-based; on heterogeneous pools they are
//! lifted to the composite `(length, class)` rule space with
//! [`mflb_policy::lift_to_composite`] (rate-blind, as in §5).

use crate::checkpoint::TrainingCheckpoint;
use crate::oracle::{solve_oracle, OracleConfig};
use crate::scenario_env::PolicyShape;
use mflb_core::mdp::FixedRulePolicy;
use mflb_policy::InferenceConfig;
use mflb_sim::{monte_carlo, EngineSpec, Scenario};
use serde::{Deserialize, Serialize};

/// One (policy, system size) cell of the evaluation table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRow {
    /// Policy label (`MF (learned)`, `JSQ(d)`, `RND`, `SOFT(β*)`,
    /// `MF-DP (oracle)`).
    pub policy: String,
    /// Number of queues `M`.
    pub m: usize,
    /// Number of clients `N`.
    pub n: u64,
    /// Mean cumulative per-queue drops over the episode.
    pub mean_drops: f64,
    /// 95% confidence half-width over the Monte-Carlo runs.
    pub ci95: f64,
    /// Fraction of jobs dropped among all jobs that reached a queue.
    pub drop_fraction: f64,
    /// Optimality gap versus the DP oracle at the same `M`, in percent:
    /// `(drops − oracle drops) / max(oracle drops, ε) · 100`. Present only
    /// when the eval ran with an oracle; exactly `0` on the oracle's own
    /// row.
    #[serde(default)]
    pub gap_pct: Option<f64>,
}

/// Provenance of the oracle a gap-reporting eval ran against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Simplex lattice resolution of the solve.
    pub grid_resolution: usize,
    /// Value-iteration sweeps used.
    pub sweeps: usize,
    /// Final sup-norm residual of the solve.
    pub residual: f64,
    /// Whether the oracle is an exact certificate for this scenario (vs a
    /// mean-matched reference).
    pub exact: bool,
    /// Approximation note for non-exact oracles (empty when exact).
    pub note: String,
    /// Whether the solution came from the on-disk checkpoint cache.
    pub cache_hit: bool,
}

/// The full evaluation report (serialized by `mflb eval --out`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// The evaluated scenario (the checkpoint's, or an override).
    pub scenario: Scenario,
    /// Episode length in decision epochs (`T_e`).
    pub horizon: usize,
    /// Monte-Carlo runs per cell.
    pub runs: usize,
    /// Base seed of the per-run RNG streams.
    pub seed: u64,
    /// Softmin temperature used for the `SOFT` baseline.
    pub softmin_beta: f64,
    /// Provenance of the DP oracle when the eval ran with one.
    #[serde(default)]
    pub oracle: Option<OracleSummary>,
    /// The table, grouped by system size then policy.
    pub rows: Vec<EvalRow>,
}

impl EvalReport {
    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Mean drops of a policy at the scenario's own system size (first
    /// swept `M`), if present.
    pub fn mean_drops_of(&self, policy: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.policy == policy).map(|r| r.mean_drops)
    }

    /// Optimality gap of a policy at the first swept `M`, if the eval ran
    /// with an oracle.
    pub fn gap_pct_of(&self, policy: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.policy == policy).and_then(|r| r.gap_pct)
    }
}

/// Derives the scenario for a swept system size `M` (`N = M²`, the
/// paper's scaling). Heterogeneous pools stretch their per-server rate
/// pattern proportionally so class fractions are preserved to within one
/// server.
pub fn scenario_with_m(scenario: &Scenario, m: usize) -> Scenario {
    let mut out = scenario.clone();
    out.config = out.config.with_m_squared(m);
    if let EngineSpec::Hetero { rates } = &scenario.engine {
        let old = rates.len().max(1);
        let stretched = (0..m).map(|i| rates[i * old / m.max(1)]).collect();
        out.engine = EngineSpec::Hetero { rates: stretched };
    }
    out
}

/// Evaluates a checkpoint on its scenario's finite system for each `M` in
/// `m_sweep` (empty sweep → the scenario's own size), comparing the
/// learned policy against JSQ(d), RND and softmin(β*).
///
/// `threads = 0` uses all available cores for the Monte-Carlo fan-out.
pub fn evaluate_checkpoint(
    ckpt: &TrainingCheckpoint,
    scenario: &Scenario,
    m_sweep: &[usize],
    runs: usize,
    seed: u64,
    threads: usize,
) -> Result<EvalReport, String> {
    evaluate_checkpoint_with_oracle(ckpt, scenario, m_sweep, runs, seed, threads, None)
}

/// Drops-denominator floor of the gap computation: keeps the percentage
/// finite when the oracle achieves (numerically) zero drops.
const GAP_EPSILON: f64 = 1e-9;

/// [`evaluate_checkpoint`] plus optimality-gap certification: when an
/// [`OracleConfig`] is supplied, the discretized-MDP optimum is solved
/// (or loaded from its cache), deployed in the same finite system as an
/// extra `MF-DP (oracle)` row per `M`, and every row gains a `gap_pct`
/// column — `(drops − oracle drops) / max(oracle drops, ε) · 100`, with
/// the oracle's own row pinned to exactly `0`.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_checkpoint_with_oracle(
    ckpt: &TrainingCheckpoint,
    scenario: &Scenario,
    m_sweep: &[usize],
    runs: usize,
    seed: u64,
    threads: usize,
    oracle: Option<&OracleConfig>,
) -> Result<EvalReport, String> {
    evaluate_checkpoint_configured(
        ckpt,
        scenario,
        m_sweep,
        runs,
        seed,
        threads,
        oracle,
        InferenceConfig::default(),
    )
}

/// [`evaluate_checkpoint_with_oracle`] with an explicit
/// [`InferenceConfig`] for the learned policy's network (precision tier
/// and tanh mode — `mflb eval --precision f32` / `--fast-math` land
/// here). The baselines and the oracle are rule tables and are unaffected;
/// the default config reproduces [`evaluate_checkpoint_with_oracle`]
/// bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_checkpoint_configured(
    ckpt: &TrainingCheckpoint,
    scenario: &Scenario,
    m_sweep: &[usize],
    runs: usize,
    seed: u64,
    threads: usize,
    oracle: Option<&OracleConfig>,
    inference: InferenceConfig,
) -> Result<EvalReport, String> {
    ckpt.validate_for(scenario)?;
    let oracle = match oracle {
        Some(cfg) => Some(solve_oracle(scenario, cfg)?),
        None => None,
    };
    let learned = ckpt.shape().into_policy(ckpt.policy_net.clone()).with_inference(inference);
    let shape = PolicyShape::for_scenario(scenario);
    let zs = shape.obs_states;
    let d = shape.d;
    let classes = shape.rule_states / zs;

    // Tune the softmin temperature once, in the homogeneous mean-field
    // model (cheap, deterministic up to arrival noise).
    let horizon = scenario.config.eval_episode_len();
    let beta = mflb_policy::optimize_beta(&scenario.config, horizon.min(60), 6, seed).beta;

    let lift = |rule: mflb_core::DecisionRule| {
        if classes > 1 {
            mflb_policy::lift_to_composite(&rule, zs, classes)
        } else {
            rule
        }
    };
    let baselines: Vec<(String, FixedRulePolicy)> = vec![
        (format!("JSQ({d})"), FixedRulePolicy::new(lift(mflb_policy::jsq_rule(zs, d)), "JSQ")),
        ("RND".into(), FixedRulePolicy::new(lift(mflb_policy::rnd_rule(zs, d)), "RND")),
        (
            format!("SOFT(β*={beta:.2})"),
            FixedRulePolicy::new(lift(mflb_policy::softmin_rule(zs, d, beta)), "SOFT"),
        ),
    ];

    let sweep: Vec<usize> =
        if m_sweep.is_empty() { vec![scenario.config.num_queues] } else { m_sweep.to_vec() };

    let mut rows = Vec::new();
    for &m in &sweep {
        let sized = if m == scenario.config.num_queues {
            scenario.clone()
        } else {
            scenario_with_m(scenario, m)
        };
        let engine = sized.build()?;
        let n = sized.config.num_clients;
        let group_start = rows.len();
        let mc = monte_carlo(&engine, &learned, horizon, runs, seed, threads);
        rows.push(EvalRow {
            policy: "MF (learned)".into(),
            m,
            n,
            mean_drops: mc.mean(),
            ci95: mc.ci95(),
            drop_fraction: mc.drop_fraction(),
            gap_pct: None,
        });
        for (label, policy) in &baselines {
            let mc = monte_carlo(&engine, policy, horizon, runs, seed, threads);
            rows.push(EvalRow {
                policy: label.clone(),
                m,
                n,
                mean_drops: mc.mean(),
                ci95: mc.ci95(),
                drop_fraction: mc.drop_fraction(),
                gap_pct: None,
            });
        }
        if let Some(o) = &oracle {
            let mc = monte_carlo(&engine, &o.policy, horizon, runs, seed, threads);
            let oracle_drops = mc.mean();
            for row in &mut rows[group_start..] {
                row.gap_pct =
                    Some((row.mean_drops - oracle_drops) / oracle_drops.max(GAP_EPSILON) * 100.0);
            }
            rows.push(EvalRow {
                policy: "MF-DP (oracle)".into(),
                m,
                n,
                mean_drops: oracle_drops,
                ci95: mc.ci95(),
                drop_fraction: mc.drop_fraction(),
                // The oracle is its own yardstick: pinned to exactly 0,
                // not recomputed through the division.
                gap_pct: Some(0.0),
            });
        }
    }

    let oracle_summary = oracle.map(|o| OracleSummary {
        grid_resolution: o.grid_resolution,
        sweeps: o.sweeps,
        residual: o.residual,
        exact: o.exactness.is_exact(),
        note: o.exactness.note().to_string(),
        cache_hit: o.cache_hit,
    });
    Ok(EvalReport {
        scenario: scenario.clone(),
        horizon,
        runs,
        seed,
        softmin_beta: beta,
        oracle: oracle_summary,
        rows,
    })
}

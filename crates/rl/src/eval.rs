//! Checkpoint evaluation: deploy a trained policy into the scenario's
//! finite-N system and compare it against the classical baselines.
//!
//! Mirrors the paper's Fig. 4–6 protocol: for each system size `M` (with
//! `N = M²`, the paper's scaling) the learned policy, JSQ(d), RND and the
//! tuned softmin run `n` independent Monte-Carlo episodes of the scenario's
//! finite engine over the evaluation horizon `T_e = round(eval_time/Δt)`,
//! and the report holds mean cumulative per-queue drops with 95% confidence
//! half-widths. Baselines are length-based; on heterogeneous pools they are
//! lifted to the composite `(length, class)` rule space with
//! [`mflb_policy::lift_to_composite`] (rate-blind, as in §5).

use crate::checkpoint::TrainingCheckpoint;
use crate::scenario_env::PolicyShape;
use mflb_core::mdp::FixedRulePolicy;
use mflb_sim::{monte_carlo, EngineSpec, Scenario};
use serde::{Deserialize, Serialize};

/// One (policy, system size) cell of the evaluation table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRow {
    /// Policy label (`MF (learned)`, `JSQ(d)`, `RND`, `SOFT(β*)`).
    pub policy: String,
    /// Number of queues `M`.
    pub m: usize,
    /// Number of clients `N`.
    pub n: u64,
    /// Mean cumulative per-queue drops over the episode.
    pub mean_drops: f64,
    /// 95% confidence half-width over the Monte-Carlo runs.
    pub ci95: f64,
    /// Fraction of jobs dropped among all jobs that reached a queue.
    pub drop_fraction: f64,
}

/// The full evaluation report (serialized by `mflb eval --out`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// The evaluated scenario (the checkpoint's, or an override).
    pub scenario: Scenario,
    /// Episode length in decision epochs (`T_e`).
    pub horizon: usize,
    /// Monte-Carlo runs per cell.
    pub runs: usize,
    /// Base seed of the per-run RNG streams.
    pub seed: u64,
    /// Softmin temperature used for the `SOFT` baseline.
    pub softmin_beta: f64,
    /// The table, grouped by system size then policy.
    pub rows: Vec<EvalRow>,
}

impl EvalReport {
    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Mean drops of a policy at the scenario's own system size (first
    /// swept `M`), if present.
    pub fn mean_drops_of(&self, policy: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.policy == policy).map(|r| r.mean_drops)
    }
}

/// Derives the scenario for a swept system size `M` (`N = M²`, the
/// paper's scaling). Heterogeneous pools stretch their per-server rate
/// pattern proportionally so class fractions are preserved to within one
/// server.
pub fn scenario_with_m(scenario: &Scenario, m: usize) -> Scenario {
    let mut out = scenario.clone();
    out.config = out.config.with_m_squared(m);
    if let EngineSpec::Hetero { rates } = &scenario.engine {
        let old = rates.len().max(1);
        let stretched = (0..m).map(|i| rates[i * old / m.max(1)]).collect();
        out.engine = EngineSpec::Hetero { rates: stretched };
    }
    out
}

/// Evaluates a checkpoint on its scenario's finite system for each `M` in
/// `m_sweep` (empty sweep → the scenario's own size), comparing the
/// learned policy against JSQ(d), RND and softmin(β*).
///
/// `threads = 0` uses all available cores for the Monte-Carlo fan-out.
pub fn evaluate_checkpoint(
    ckpt: &TrainingCheckpoint,
    scenario: &Scenario,
    m_sweep: &[usize],
    runs: usize,
    seed: u64,
    threads: usize,
) -> Result<EvalReport, String> {
    ckpt.validate_for(scenario)?;
    let learned = ckpt.shape().into_policy(ckpt.policy_net.clone());
    let shape = PolicyShape::for_scenario(scenario);
    let zs = shape.obs_states;
    let d = shape.d;
    let classes = shape.rule_states / zs;

    // Tune the softmin temperature once, in the homogeneous mean-field
    // model (cheap, deterministic up to arrival noise).
    let horizon = scenario.config.eval_episode_len();
    let beta = mflb_policy::optimize_beta(&scenario.config, horizon.min(60), 6, seed).beta;

    let lift = |rule: mflb_core::DecisionRule| {
        if classes > 1 {
            mflb_policy::lift_to_composite(&rule, zs, classes)
        } else {
            rule
        }
    };
    let baselines: Vec<(String, FixedRulePolicy)> = vec![
        (format!("JSQ({d})"), FixedRulePolicy::new(lift(mflb_policy::jsq_rule(zs, d)), "JSQ")),
        ("RND".into(), FixedRulePolicy::new(lift(mflb_policy::rnd_rule(zs, d)), "RND")),
        (
            format!("SOFT(β*={beta:.2})"),
            FixedRulePolicy::new(lift(mflb_policy::softmin_rule(zs, d, beta)), "SOFT"),
        ),
    ];

    let sweep: Vec<usize> =
        if m_sweep.is_empty() { vec![scenario.config.num_queues] } else { m_sweep.to_vec() };

    let mut rows = Vec::new();
    for &m in &sweep {
        let sized = if m == scenario.config.num_queues {
            scenario.clone()
        } else {
            scenario_with_m(scenario, m)
        };
        let engine = sized.build()?;
        let n = sized.config.num_clients;
        let mc = monte_carlo(&engine, &learned, horizon, runs, seed, threads);
        rows.push(EvalRow {
            policy: "MF (learned)".into(),
            m,
            n,
            mean_drops: mc.mean(),
            ci95: mc.ci95(),
            drop_fraction: mc.drop_fraction(),
        });
        for (label, policy) in &baselines {
            let mc = monte_carlo(&engine, policy, horizon, runs, seed, threads);
            rows.push(EvalRow {
                policy: label.clone(),
                m,
                n,
                mean_drops: mc.mean(),
                ci95: mc.ci95(),
                drop_fraction: mc.drop_fraction(),
            });
        }
    }

    Ok(EvalReport { scenario: scenario.clone(), horizon, runs, seed, softmin_beta: beta, rows })
}

//! Versioned, self-describing training checkpoints.
//!
//! A [`TrainingCheckpoint`] is everything needed to reproduce, resume or
//! deploy a training run: the **scenario** it was trained for, the full
//! [`PpoConfig`], the seed, the cumulative step count, the training curve
//! and both networks (policy + value) with the Gaussian head's log-stds.
//! The JSON layout is guarded by [`CHECKPOINT_FORMAT_VERSION`]; loading a
//! file with a different version — or one whose network shapes disagree
//! with its embedded scenario — is a hard error, never a silent
//! misdeployment.
//!
//! The legacy `mflb_policy::PolicyCheckpoint` (weights + bare shape ints)
//! remains readable for old artifacts; everything written by `mflb train`,
//! `train_policy` and `fig3_training` uses this format.

use crate::ppo::PpoConfig;
use crate::scenario_env::PolicyShape;
use mflb_nn::Mlp;
use mflb_policy::NeuralUpperPolicy;
use mflb_sim::Scenario;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current checkpoint schema version. Bump on any breaking layout change.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// One logged point of the training curve (the paper's Fig. 3 axes plus
/// update diagnostics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Training iteration (1-based).
    pub iteration: u64,
    /// Cumulative environment steps (the paper's x-axis).
    pub steps: u64,
    /// Mean return of episodes completed this iteration.
    pub mean_return: f64,
    /// Mean KL(π_old‖π) of the iteration's update.
    pub kl: f64,
    /// Entropy of the Gaussian head.
    pub entropy: f64,
}

/// A complete, versioned training artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingCheckpoint {
    /// Schema version; must equal [`CHECKPOINT_FORMAT_VERSION`] to load.
    pub format_version: u32,
    /// The scenario the policy was trained for (engine kind + system
    /// configuration); evaluation rebuilds its finite-N engine from this.
    pub scenario: Scenario,
    /// The full PPO hyper-parameter set used.
    pub ppo: PpoConfig,
    /// Training seed (rollout RNG streams derive from it).
    pub seed: u64,
    /// Cumulative environment steps trained.
    pub total_steps: u64,
    /// Per-iteration training curve.
    pub curve: Vec<CurvePoint>,
    /// The policy network (decision-rule logits head).
    pub policy_net: Mlp,
    /// The value network (kept for warm restarts).
    pub value_net: Mlp,
    /// Gaussian-head log standard deviations at the end of training.
    pub log_std: Vec<f64>,
}

/// Used to report a version mismatch before attempting a full parse.
#[derive(Deserialize)]
struct VersionProbe {
    format_version: u32,
}

impl TrainingCheckpoint {
    /// The policy interface implied by the embedded scenario.
    pub fn shape(&self) -> PolicyShape {
        PolicyShape::for_scenario(&self.scenario)
    }

    /// Checks internal consistency: the scenario must be valid and both
    /// networks must match the shape the scenario implies.
    pub fn validate(&self) -> Result<(), String> {
        if self.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(format!(
                "checkpoint format version {} is not supported (expected {})",
                self.format_version, CHECKPOINT_FORMAT_VERSION
            ));
        }
        self.scenario.validate().map_err(|e| format!("embedded scenario: {e}"))?;
        self.validate_for(&self.scenario)
    }

    /// Checks that the policy can be deployed against `target` — its
    /// observation/action dimensions must match the target scenario's
    /// [`PolicyShape`]. This is what rejects e.g. a homogeneous policy
    /// against a two-class heterogeneous pool, or a `B = 5` policy against
    /// a `B = 9` buffer.
    pub fn validate_for(&self, target: &Scenario) -> Result<(), String> {
        let shape = PolicyShape::for_scenario(target);
        if self.policy_net.input_dim() != shape.obs_dim() {
            return Err(format!(
                "policy network observes {} dims but the scenario needs {} \
                 ({} length states + {} arrival levels)",
                self.policy_net.input_dim(),
                shape.obs_dim(),
                shape.obs_states,
                shape.num_levels
            ));
        }
        if self.policy_net.output_dim() != shape.act_dim() {
            return Err(format!(
                "policy network emits {} logits but the scenario needs {} \
                 ({} rule states, d = {})",
                self.policy_net.output_dim(),
                shape.act_dim(),
                shape.rule_states,
                shape.d
            ));
        }
        if self.value_net.input_dim() != shape.obs_dim() || self.value_net.output_dim() != 1 {
            return Err(format!(
                "value network has shape {} -> {}, expected {} -> 1",
                self.value_net.input_dim(),
                self.value_net.output_dim(),
                shape.obs_dim()
            ));
        }
        if self.log_std.len() != shape.act_dim() {
            return Err(format!(
                "log_std has {} entries, expected {}",
                self.log_std.len(),
                shape.act_dim()
            ));
        }
        Ok(())
    }

    /// Builds the deployable deterministic policy (validates first).
    pub fn into_policy(&self) -> Result<NeuralUpperPolicy, String> {
        self.validate()?;
        Ok(self.shape().into_policy(self.policy_net.clone()))
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Parses and validates a checkpoint from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        match serde_json::from_str::<Self>(text) {
            Ok(ckpt) => {
                // `validate` reports an unsupported format_version first.
                ckpt.validate()?;
                Ok(ckpt)
            }
            Err(full_err) => {
                // A future layout usually fails the full parse; fall back
                // to the one-field probe so the error names the version
                // gap instead of whichever field happened to change.
                if let Ok(probe) = serde_json::from_str::<VersionProbe>(text) {
                    if probe.format_version != CHECKPOINT_FORMAT_VERSION {
                        return Err(format!(
                            "checkpoint format version {} is not supported (expected {})",
                            probe.format_version, CHECKPOINT_FORMAT_VERSION
                        ));
                    }
                }
                Err(format!("parse checkpoint: {full_err}"))
            }
        }
    }

    /// Writes the checkpoint to a JSON file (creating parent directories).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, self.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Reads and validates a checkpoint from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }
}

//! REINFORCE (Monte-Carlo policy gradient) with a learned value baseline —
//! the classic predecessor of PPO, included as the simplest gradient-based
//! ablation point.
//!
//! Per iteration: roll out complete episodes, compute discounted
//! returns-to-go `G_t`, form advantages `Â_t = G_t − V(s_t)` against the
//! learned baseline, and take **one** policy-gradient step
//!
//! ```text
//! ∇ J = E[ ∇ log π(a_t | s_t) · Â_t ] + c_H · ∇H(π)
//! ```
//!
//! followed by a few epochs of value regression on `G_t`. Shares the
//! Gaussian-head parameterization (state-independent log-stds, softmax
//! decision-rule decoding) with [`crate::ppo::PpoTrainer`], so learned
//! policies deploy identically. Compared against PPO in the
//! `ablation_learners` experiment: same parameterization, no trust region
//! — isolating what the clipped surrogate buys.

use crate::env::Env;
use mflb_nn::{clip_grad_norm, Activation, Adam, DiagGaussian, Mlp, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// REINFORCE hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReinforceConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Policy Adam learning rate.
    pub lr: f64,
    /// Value-baseline Adam learning rate.
    pub value_lr: f64,
    /// Complete episodes collected per iteration.
    pub episodes_per_iter: usize,
    /// Value-regression epochs per iteration.
    pub value_epochs: usize,
    /// Entropy bonus coefficient.
    pub entropy_coeff: f64,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// Initial `log σ` of the Gaussian head.
    pub initial_log_std: f64,
    /// Hidden layer widths of both networks.
    pub hidden: Vec<usize>,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            lr: 1e-3,
            value_lr: 1e-3,
            episodes_per_iter: 8,
            value_epochs: 5,
            entropy_coeff: 0.0,
            grad_clip: 10.0,
            initial_log_std: 0.0,
            hidden: vec![64, 64],
        }
    }
}

/// Per-iteration statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReinforceStats {
    /// Iteration counter (1-based).
    pub iteration: u64,
    /// Cumulative environment steps.
    pub total_steps: u64,
    /// Mean undiscounted return of the collected episodes.
    pub mean_episode_return: f64,
    /// Policy-gradient loss (−surrogate) of the update.
    pub policy_loss: f64,
    /// Final value-regression loss.
    pub value_loss: f64,
    /// Policy entropy.
    pub entropy: f64,
}

/// The REINFORCE trainer.
pub struct ReinforceTrainer {
    cfg: ReinforceConfig,
    policy: Mlp,
    log_std: Vec<f64>,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    env: Box<dyn Env>,
    env_rng: StdRng,
    total_steps: u64,
    iteration: u64,
}

impl ReinforceTrainer {
    /// Creates a trainer for environments shaped like `prototype`.
    pub fn new(prototype: &dyn Env, cfg: ReinforceConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (obs_dim, act_dim) = (prototype.obs_dim(), prototype.act_dim());

        let mut sizes = vec![obs_dim];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(act_dim);
        let mut policy = Mlp::new(&sizes, Activation::Tanh, &mut rng);
        // Near-uniform initial decision rules, as in the PPO trainer.
        {
            let mut p = policy.params_vec();
            let n_last = sizes[sizes.len() - 2] * act_dim + act_dim;
            let start = p.len() - n_last;
            for v in &mut p[start..] {
                *v *= 0.01;
            }
            policy.read_params(&p);
        }

        let mut vsizes = vec![obs_dim];
        vsizes.extend_from_slice(&cfg.hidden);
        vsizes.push(1);
        let value = Mlp::new(&vsizes, Activation::Tanh, &mut rng);

        let log_std = vec![cfg.initial_log_std; act_dim];
        let opt_policy = Adam::new(policy.num_params() + act_dim, cfg.lr);
        let opt_value = Adam::new(value.num_params(), cfg.value_lr);
        let env = prototype.boxed_clone();

        Self {
            cfg,
            policy,
            log_std,
            value,
            opt_policy,
            opt_value,
            env,
            env_rng: StdRng::seed_from_u64(seed ^ 0x51AC_EED5),
            total_steps: 0,
            iteration: 0,
        }
    }

    /// The policy network.
    pub fn policy_net(&self) -> &Mlp {
        &self.policy
    }

    /// Cumulative environment steps.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Deterministic (mean) action for an observation.
    pub fn deterministic_action(&self, obs: &[f64]) -> Vec<f64> {
        self.policy.forward_one(obs)
    }

    /// Runs one iteration: collect episodes, one policy-gradient step,
    /// several value-regression epochs.
    pub fn train_iteration(&mut self, rng: &mut StdRng) -> ReinforceStats {
        self.iteration += 1;
        let act_dim = self.log_std.len();

        // --- Collect complete episodes. ---
        let mut obs_all: Vec<Vec<f64>> = Vec::new();
        let mut act_all: Vec<Vec<f64>> = Vec::new();
        let mut ret_all: Vec<f64> = Vec::new();
        let mut episode_returns = Vec::with_capacity(self.cfg.episodes_per_iter);
        for _ in 0..self.cfg.episodes_per_iter {
            let mut obs = self.env.reset(&mut self.env_rng);
            let mut rewards = Vec::new();
            let start = obs_all.len();
            loop {
                let mean = self.policy.forward_one(&obs);
                let action = DiagGaussian::new(&mean, &self.log_std).sample(rng);
                let result = self.env.step(&action, &mut self.env_rng);
                obs_all.push(std::mem::replace(&mut obs, result.obs));
                act_all.push(action);
                rewards.push(result.reward);
                if result.done {
                    break;
                }
            }
            episode_returns.push(rewards.iter().sum::<f64>());
            // Discounted returns-to-go for this episode.
            let mut g = 0.0;
            let mut returns = vec![0.0; rewards.len()];
            for (t, &r) in rewards.iter().enumerate().rev() {
                g = r + self.cfg.gamma * g;
                returns[t] = g;
            }
            ret_all.extend_from_slice(&returns);
            debug_assert_eq!(obs_all.len() - start, returns.len());
        }
        let n = obs_all.len();
        self.total_steps += n as u64;

        // --- Advantages against the value baseline, normalized. ---
        let mut adv: Vec<f64> =
            (0..n).map(|i| ret_all[i] - self.value.forward_one(&obs_all[i])[0]).collect();
        let mean_adv = adv.iter().sum::<f64>() / n as f64;
        let var_adv = adv.iter().map(|a| (a - mean_adv) * (a - mean_adv)).sum::<f64>() / n as f64;
        let std_adv = var_adv.sqrt().max(1e-8);
        for a in &mut adv {
            *a = (*a - mean_adv) / std_adv;
        }

        // --- One policy-gradient step over the whole batch. ---
        let obs_dim = obs_all[0].len();
        let mut obs_mb = Tensor::zeros(n, obs_dim);
        for (row, o) in obs_all.iter().enumerate() {
            obs_mb.row_mut(row).copy_from_slice(o);
        }
        let cache = self.policy.forward_cached(&obs_mb);
        let means = cache.output();
        let inv_n = 1.0 / n as f64;
        let mut grad_mean = Tensor::zeros(n, act_dim);
        let mut grad_log_std = vec![0.0; act_dim];
        let mut policy_loss = 0.0;
        for i in 0..n {
            let dist = DiagGaussian::new(means.row(i), &self.log_std);
            policy_loss -= dist.log_prob(&act_all[i]) * adv[i] * inv_n;
            let coeff = -adv[i] * inv_n; // d(−logp·adv)/d logp
            let glp_mean = dist.log_prob_grad_mean(&act_all[i]);
            let glp_ls = dist.log_prob_grad_log_std(&act_all[i]);
            for k in 0..act_dim {
                grad_mean.set(i, k, coeff * glp_mean[k]);
                grad_log_std[k] += coeff * glp_ls[k];
            }
        }
        if self.cfg.entropy_coeff != 0.0 {
            // dH/d log_std_k = 1 for a diagonal Gaussian.
            for g in grad_log_std.iter_mut() {
                *g -= self.cfg.entropy_coeff;
            }
        }
        let entropy = DiagGaussian::new(means.row(0), &self.log_std).entropy();
        let mut flat = self.policy.backward(&cache, &grad_mean);
        flat.extend_from_slice(&grad_log_std);
        clip_grad_norm(&mut flat, self.cfg.grad_clip);
        let mut params = self.policy.params_vec();
        params.extend_from_slice(&self.log_std);
        self.opt_policy.step(&mut params, &flat);
        let np = self.policy.num_params();
        self.policy.read_params(&params[..np]);
        self.log_std.copy_from_slice(&params[np..]);
        for ls in &mut self.log_std {
            *ls = ls.clamp(-5.0, 2.0);
        }

        // --- Value regression on the returns. ---
        let mut value_loss = 0.0;
        for _ in 0..self.cfg.value_epochs {
            let vcache = self.value.forward_cached(&obs_mb);
            let mut vgrad = Tensor::zeros(n, 1);
            value_loss = 0.0;
            for i in 0..n {
                let err = vcache.output().get(i, 0) - ret_all[i];
                value_loss += err * err * inv_n;
                vgrad.set(i, 0, 2.0 * err * inv_n);
            }
            let mut vflat = self.value.backward(&vcache, &vgrad);
            clip_grad_norm(&mut vflat, self.cfg.grad_clip);
            let mut vparams = self.value.params_vec();
            self.opt_value.step(&mut vparams, &vflat);
            self.value.read_params(&vparams);
        }

        ReinforceStats {
            iteration: self.iteration,
            total_steps: self.total_steps,
            mean_episode_return: episode_returns.iter().sum::<f64>() / episode_returns.len() as f64,
            policy_loss,
            value_loss,
            entropy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ToyControlEnv;

    #[test]
    fn reinforce_improves_on_toy_control() {
        let env = ToyControlEnv::new(10);
        let cfg = ReinforceConfig {
            lr: 5e-3,
            value_lr: 5e-3,
            episodes_per_iter: 16,
            hidden: vec![16, 16],
            initial_log_std: -0.5,
            ..ReinforceConfig::default()
        };
        let mut trainer = ReinforceTrainer::new(&env, cfg, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for it in 0..60 {
            let stats = trainer.train_iteration(&mut rng);
            if it == 0 {
                first = stats.mean_episode_return;
            }
            last = stats.mean_episode_return;
        }
        assert!(last > first + 0.3, "REINFORCE failed to improve: {first} -> {last}");
        let a_pos = trainer.deterministic_action(&[1.0])[0];
        let a_neg = trainer.deterministic_action(&[-1.0])[0];
        assert!(a_pos < -0.2, "action at x=1 should be negative, got {a_pos}");
        assert!(a_neg > 0.2, "action at x=-1 should be positive, got {a_neg}");
    }

    #[test]
    fn bookkeeping_counts_full_episodes() {
        let env = ToyControlEnv::new(7);
        let cfg =
            ReinforceConfig { episodes_per_iter: 3, hidden: vec![8], ..ReinforceConfig::default() };
        let mut trainer = ReinforceTrainer::new(&env, cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s1 = trainer.train_iteration(&mut rng);
        assert_eq!(s1.iteration, 1);
        assert_eq!(s1.total_steps, 21, "3 episodes × 7 steps");
        assert!(s1.mean_episode_return.is_finite());
        assert!(s1.value_loss >= 0.0);
        let s2 = trainer.train_iteration(&mut rng);
        assert_eq!(s2.total_steps, 42);
    }

    #[test]
    fn seeded_training_is_reproducible() {
        let env = ToyControlEnv::new(5);
        let cfg =
            ReinforceConfig { episodes_per_iter: 4, hidden: vec![8], ..ReinforceConfig::default() };
        let run = || {
            let mut t = ReinforceTrainer::new(&env, cfg.clone(), 9);
            let mut rng = StdRng::seed_from_u64(10);
            let mut v = Vec::new();
            for _ in 0..3 {
                v.push(t.train_iteration(&mut rng).mean_episode_return);
            }
            v
        };
        assert_eq!(run(), run());
    }
}

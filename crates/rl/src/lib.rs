//! Hand-rolled reinforcement learning for the MFC MDP: PPO (the paper's
//! algorithm) plus REINFORCE and CEM baselines, and the environment
//! adapter.
//!
//! Rust's RL ecosystem is immature (the reproduction assessment for this
//! paper flags exactly that), so the full training stack is implemented
//! here on top of `mflb-nn`:
//!
//! * [`env::Env`] — the minimal episodic environment interface (with a toy
//!   control task for the test-suite),
//! * [`buffer::RolloutBuffer`] — experience storage + GAE(λ),
//! * [`ppo::PpoTrainer`] — clipped-surrogate PPO with adaptive KL penalty
//!   and parallel rollout workers; [`ppo::PpoConfig::paper`] is Table 2,
//! * [`reinforce::ReinforceTrainer`] — Monte-Carlo policy gradient with a
//!   learned baseline (the no-trust-region ablation),
//! * [`cem::CemTrainer`] — cross-entropy search over policy parameters
//!   (the derivative-free ablation),
//! * [`mfc_env::MfcEnv`] — the paper's upper-level mean-field MDP as an
//!   environment (observation `[ν_t, onehot λ_t]`, action = decision-rule
//!   logits, reward `−D_t`).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod buffer;
pub mod cem;
pub mod env;
pub mod mfc_env;
pub mod ppo;
pub mod reinforce;

pub use buffer::RolloutBuffer;
pub use cem::{CemConfig, CemStats, CemTrainer};
pub use env::{Env, StepResult, ToyControlEnv};
pub use mfc_env::MfcEnv;
pub use ppo::{IterationStats, PpoConfig, PpoTrainer};
pub use reinforce::{ReinforceConfig, ReinforceStats, ReinforceTrainer};

//! Hand-rolled reinforcement learning for the MFC MDP: PPO (the paper's
//! algorithm) plus REINFORCE and CEM baselines, the environment adapters,
//! and the scenario-driven training/evaluation subsystem.
//!
//! Rust's RL ecosystem is immature (the reproduction assessment for this
//! paper flags exactly that), so the full training stack is implemented
//! here on top of `mflb-nn`. Component ↔ paper map:
//!
//! * [`env::Env`] — the minimal episodic environment interface (with a toy
//!   control task for the test-suite),
//! * [`buffer::RolloutBuffer`] — experience storage plus GAE(λ) advantages
//!   (Schulman et al. 2016; the paper trains with `λ_RL = 1`, Table 2),
//! * [`ppo::PpoTrainer`] — clipped-surrogate PPO with the adaptive KL
//!   penalty of the paper's RLlib setup and parallel, episode-indexed
//!   rollout workers; [`ppo::PpoConfig::paper`] is Table 2 verbatim,
//! * [`reinforce::ReinforceTrainer`] — Monte-Carlo policy gradient with a
//!   learned baseline (the no-trust-region ablation),
//! * [`cem::CemTrainer`] — cross-entropy search over policy parameters
//!   (the derivative-free ablation),
//! * [`mfc_env::MfcEnv`] — the paper's upper-level mean-field MDP
//!   (Eq. 29–31) as an environment: observation `[ν_t, onehot λ_t]`,
//!   action = decision-rule logits with the §4 "manual normalization"
//!   softmax decoding, reward `−D_t`,
//! * [`scenario_env`] — training environments selected by a serde
//!   [`mflb_sim::Scenario`]: homogeneous exponential, heterogeneous pools
//!   (§2.5) and phase-type service (§5),
//! * [`checkpoint::TrainingCheckpoint`] — the versioned training artifact
//!   (scenario + config + seed + curve + networks) with strict load-time
//!   shape validation,
//! * [`train::train_scenario`] — the `Scenario → PPO → checkpoint` driver
//!   behind `mflb train`,
//! * [`eval::evaluate_checkpoint`] — finite-N Monte-Carlo comparison of a
//!   checkpoint against JSQ(d)/RND/softmin, the Fig. 4–6 protocol,
//! * [`oracle`] — the exact-DP bridge: classify a scenario's oracle
//!   exactness, solve (or cache) the discretized MDP and report
//!   per-policy optimality gaps through
//!   [`eval::evaluate_checkpoint_with_oracle`] / `mflb eval --oracle`,
//! * [`distill`] — projection of a neural checkpoint onto a tabular
//!   lattice policy (greedy-match + DP polish), the `mflb distill`
//!   backend.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod buffer;
pub mod cem;
pub mod checkpoint;
pub mod distill;
pub mod env;
pub mod eval;
pub mod mfc_env;
pub mod oracle;
pub mod ppo;
pub mod reinforce;
pub mod scenario_env;
pub mod train;

pub use buffer::RolloutBuffer;
pub use cem::{CemConfig, CemStats, CemTrainer};
pub use checkpoint::{CurvePoint, TrainingCheckpoint, CHECKPOINT_FORMAT_VERSION};
pub use distill::{
    distill_checkpoint, DistillConfig, DistillResult, DistilledCheckpoint, TabularPolicy,
    DISTILLED_FORMAT_VERSION,
};
pub use env::{Env, StepResult, ToyControlEnv};
pub use eval::{
    evaluate_checkpoint, evaluate_checkpoint_configured, evaluate_checkpoint_with_oracle,
    scenario_with_m, EvalReport, EvalRow, OracleSummary,
};
pub use mfc_env::MfcEnv;
pub use oracle::{
    oracle_exactness, oracle_feasibility, oracle_mdp_config, scenario_oracle_key, solve_oracle,
    Oracle, OracleConfig, OracleExactness,
};
pub use ppo::{CollectStats, IterationStats, PpoConfig, PpoTrainer, UpdateStats};
pub use reinforce::{ReinforceConfig, ReinforceStats, ReinforceTrainer};
pub use scenario_env::{
    build_env, hetero_classes, FaultyMfcEnv, GraphMfcEnv, HeteroMfcEnv, PhMfcEnv, PolicyShape,
};
pub use train::{train_scenario, train_scenario_from, TrainResult};

//! The reinforcement-learning environment interface.
//!
//! Continuous observation and action vectors, episodic with fixed or
//! environment-decided horizons. Deliberately minimal: exactly what PPO
//! needs, nothing more.

use rand::rngs::StdRng;

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Observation after the transition.
    pub obs: Vec<f64>,
    /// Scalar reward of the transition.
    pub reward: f64,
    /// `true` iff the episode ended with this transition.
    pub done: bool,
}

/// An episodic environment with continuous observations and actions.
pub trait Env: Send {
    /// Observation dimensionality.
    fn obs_dim(&self) -> usize;

    /// Action dimensionality.
    fn act_dim(&self) -> usize;

    /// Starts a new episode, returning the initial observation.
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64>;

    /// Applies an action.
    fn step(&mut self, action: &[f64], rng: &mut StdRng) -> StepResult;

    /// Clones the environment into a fresh boxed instance (parallel rollout
    /// workers each own one).
    fn boxed_clone(&self) -> Box<dyn Env>;

    /// Fixed episode length, if the environment always terminates after the
    /// same number of steps.
    ///
    /// [`crate::PpoTrainer`] uses the hint to dispatch exactly the number of
    /// episodes a rollout batch needs; environments with data-dependent
    /// horizons return `None` (the default) and the trainer falls back to a
    /// collect-until-full scheme. Either way, episode RNG streams are pinned
    /// to global episode indices, so rollouts are bit-identical for any
    /// worker count.
    fn horizon_hint(&self) -> Option<usize> {
        None
    }
}

/// A deterministic LQR-flavoured toy environment used by the PPO
/// test-suite: state `x ∈ ℝ`, action `a ∈ ℝ`, dynamics `x' = x + a`,
/// reward `−x'² − 0.01·a²`, horizon 10, `x₀ ∼ U(−1, 1)`.
///
/// The optimal policy is `a = −x`; PPO must learn a clearly negative
/// correlation within a few iterations, which the tests assert.
#[derive(Debug, Clone)]
pub struct ToyControlEnv {
    x: f64,
    t: usize,
    horizon: usize,
}

impl ToyControlEnv {
    /// Creates the toy environment.
    pub fn new(horizon: usize) -> Self {
        Self { x: 0.0, t: 0, horizon }
    }
}

impl Env for ToyControlEnv {
    fn obs_dim(&self) -> usize {
        1
    }

    fn act_dim(&self) -> usize {
        1
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f64> {
        use rand::Rng;
        self.x = rng.gen_range(-1.0..1.0);
        self.t = 0;
        vec![self.x]
    }

    fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> StepResult {
        let a = action[0].clamp(-3.0, 3.0);
        self.x += a;
        self.t += 1;
        let reward = -self.x * self.x - 0.01 * a * a;
        StepResult { obs: vec![self.x], reward, done: self.t >= self.horizon }
    }

    fn boxed_clone(&self) -> Box<dyn Env> {
        Box::new(self.clone())
    }

    fn horizon_hint(&self) -> Option<usize> {
        Some(self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn toy_env_episode_structure() {
        let mut env = ToyControlEnv::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.len(), 1);
        let mut steps = 0;
        loop {
            let r = env.step(&[0.1], &mut rng);
            steps += 1;
            assert!(r.reward <= 0.0);
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 5);
    }

    #[test]
    fn zeroing_action_is_better_than_runaway() {
        let mut env = ToyControlEnv::new(10);
        let mut rng = StdRng::seed_from_u64(2);
        env.reset(&mut rng);
        let x0 = env.x;
        let good = env.step(&[-x0], &mut rng).reward;
        // Restart with same state and take a bad action.
        env.x = x0;
        env.t = 0;
        let bad = env.step(&[2.0], &mut rng).reward;
        assert!(good > bad);
    }
}

//! A small JSON data model, parser and printer backing the vendored serde.
//!
//! Numbers keep an integer/float distinction so `u64` seeds survive the
//! roundtrip exactly; floats print with Rust's shortest-roundtrip `{}`
//! formatting, so `f64` values also roundtrip bit-exactly.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written without `.`/`e` — kept exact as `i128`.
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved, lookups are linear.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                // `{}` gives the shortest string that parses back exactly,
                // but omits ".0" for integral floats; re-add it so the value
                // re-parses as Float (only a cosmetic distinction — the
                // Deserialize impls accept either).
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error raised by parsing or by a [`crate::Deserialize`] impl.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Create an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Standard "expected X, got Y" error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // printer (it only \u-escapes control chars).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn parse_print_roundtrip() {
        let src = r#"{"a":[1,2.5,-3e2,true,null],"s":"x\"\ny","neg":-12}"#;
        let v = Value::parse(src).unwrap();
        let printed = v.to_json();
        assert_eq!(Value::parse(&printed).unwrap(), v);
    }

    #[test]
    fn float_exactness() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -0.0] {
            let v = Value::Float(f);
            match Value::parse(&v.to_json()).unwrap() {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn int_exactness() {
        let v = Value::Int(u64::MAX as i128);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
    }
}

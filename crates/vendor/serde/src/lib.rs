//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde replacement. Unlike real serde's format-generic data model,
//! this shim is JSON-backed: [`Serialize`] renders a value into a
//! [`json::Value`] tree and [`Deserialize`] rebuilds a value from one. The
//! companion vendored `serde_json` crate provides `to_string` / `from_str`
//! on top, and the vendored `serde_derive` proc-macro derives both traits
//! for plain structs and enums (honouring `#[serde(skip)]` and
//! `#[serde(default)]`).
#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};

/// Render `self` as a JSON value tree.
pub trait Serialize {
    /// Convert to the JSON data model.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    /// Convert from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    // Tolerate floats holding integral values (e.g. 3.0).
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => *f as i128,
                    other => return Err(Error::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else if f.is_nan() {
                    // JSON has no non-finite numbers; use sentinel strings
                    // (our vendored serde_json is the only consumer).
                    Value::Str("NaN".to_string())
                } else if f > 0.0 {
                    Value::Str("inf".to_string())
                } else {
                    Value::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Str(s) if s == "NaN" => Ok(<$t>::NAN),
                    Value::Str(s) if s == "inf" => Ok(<$t>::INFINITY),
                    Value::Str(s) if s == "-inf" => Ok(<$t>::NEG_INFINITY),
                    other => Err(Error::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::type_mismatch("char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Arr(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::type_mismatch("tuple array", other)),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: ToString + std::str::FromStr, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}
impl<K: Ord + std::str::FromStr, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = k
                        .parse::<K>()
                        .map_err(|_| Error::new(format!("unparsable map key {k:?}")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Derive-macro support (not part of the public serde API)
// ---------------------------------------------------------------------------

/// Runtime helpers used by generated `serde_derive` code. Hidden from docs;
/// not a stable API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up `field` in an object and deserialize it; missing fields are an
    /// error (the derive emits [`get_field_or_default`] for `#[serde(default)]`).
    pub fn get_field<T: Deserialize>(entries: &[(String, Value)], field: &str) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == field) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::new(format!("field `{field}`: {e}")))
            }
            None => Err(Error::new(format!("missing field `{field}`"))),
        }
    }

    /// Like [`get_field`] but a missing field yields `T::default()`.
    pub fn get_field_or_default<T: Deserialize + Default>(
        entries: &[(String, Value)],
        field: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == field) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::new(format!("field `{field}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Expect `v` to be an object and return its entries.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Obj(entries) => Ok(entries),
            other => Err(Error::new(format!("expected object for `{ty}`, got {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitive_roundtrips() {
        let v = 3.5f64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 3.5);
        let v = 42usize.to_value();
        assert_eq!(usize::from_value(&v).unwrap(), 42);
        let v = f64::INFINITY.to_value();
        assert!(f64::from_value(&v).unwrap().is_infinite());
        let v = vec![1.0f64, 2.0].to_value();
        assert_eq!(Vec::<f64>::from_value(&v).unwrap(), vec![1.0, 2.0]);
        let v = Option::<u32>::None.to_value();
        assert_eq!(v, Value::Null);
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), None);
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1usize, 2.5f64).to_value();
        assert_eq!(<(usize, f64)>::from_value(&v).unwrap(), (1, 2.5));
    }
}

//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest).
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the proptest API its property suites use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_filter_map`, range and
//! [`collection::vec`] strategies, [`ProptestConfig::with_cases`], and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberate for a shim:
//! * **no shrinking** — a failing case reports the seed, not a minimal input;
//! * **deterministic inputs** — each test's case stream is seeded from a hash
//!   of its module path and name, so failures reproduce exactly across runs.
#![deny(rustdoc::broken_intra_doc_links)]

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases — smaller than real proptest's 256, chosen so un-configured
    /// suites stay fast in CI.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Transform generated values, rejecting those mapped to `None`.
    /// `reason` is reported if rejection keeps failing.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f, reason }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        // Real proptest gives up after a rejection budget; 1000 local tries
        // is far beyond what the repo's near-total-acceptance filters need.
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 1000 consecutive inputs: {}", self.reason);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

pub mod collection {
    //! Collection strategies ([`vec()`]).
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Number of elements for [`vec()`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// FNV-1a hash of the test's identity, mixed with the case index, so every
/// property gets its own deterministic input stream.
#[doc(hidden)]
pub fn __case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Build the per-case RNG (used by the [`proptest!`] expansion).
#[doc(hidden)]
pub fn __case_rng(test_path: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(__case_seed(test_path, case))
}

/// Define property tests. Supports the standard form:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0.0f64..1.0, v in prop::collection::vec(0usize..6, 3..10)) {
///         prop_assert!(x >= 0.0);
///         prop_assert!((3..10).contains(&v.len()));
///     }
/// }
/// ```
///
/// (The example is compile-checked; `#[test]` items only *run* under a test
/// harness, which doc tests don't have.)
// `#[test]` inside the doctest is the macro's real-world usage, not a
// mistakenly-inert test — the lint's concern is documented above.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // The body runs once per case; assertion macros carry the
                // case index through a panic message via std's panic info.
                $body
            }
        }
    )*};
}

/// `assert!` flavoured like proptest's (message formatting supported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` flavoured like proptest's.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` flavoured like proptest's.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }

        #[test]
        fn filter_map_accepts(v in prop::collection::vec(0.0f64..1.0, 4)
            .prop_filter_map("needs mass", |v| {
                let s: f64 = v.iter().sum();
                if s > 0.0 { Some(s) } else { None }
            }))
        {
            prop_assert!(v > 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::__case_rng("x::y", 3);
        let mut b = crate::__case_rng("x::y", 3);
        let s: core::ops::Range<f64> = 0.0..1.0;
        assert_eq!(s.clone().generate(&mut a), s.generate(&mut b));
    }
}

//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API
//! (`lock()` returns the guard directly; a poisoned lock is treated as
//! still-usable, matching `parking_lot`'s lack of poisoning).
#![deny(rustdoc::broken_intra_doc_links)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}

//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` shim. Written against the bare `proc_macro` API (no `syn`/`quote`
//! available offline), so it supports exactly the shapes this workspace
//! uses: non-generic structs with named fields and non-generic enums with
//! unit / struct / tuple variants, honouring `#[serde(skip)]` and
//! `#[serde(default)]` on struct fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Struct(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize` (JSON-backed shim flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, fields } => serialize_struct(name, fields),
        Input::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (JSON-backed shim flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, fields } => deserialize_struct(name, fields),
        Input::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and doc comments.
    skip_attributes(&tokens, &mut i);
    // Skip visibility.
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple structs are not supported (type `{name}`)")
            }
            Some(_) => i += 1, // e.g. `where` clauses would land here; none exist
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };

    match keyword.as_str() {
        "struct" => Input::Struct { fields: parse_fields(body.stream()), name },
        "enum" => Input::Enum { variants: parse_variants(body.stream()), name },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Vec<FieldAttrs> {
    let mut collected = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        // Inner attribute marker `!` (not expected, but harmless).
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            collected.push(parse_serde_attr(g.stream()));
            *i += 1;
        } else {
            panic!("serde_derive: malformed attribute");
        }
    }
    collected
}

/// Extract skip/default flags from one attribute group like `serde(skip)`.
fn parse_serde_attr(stream: TokenStream) -> FieldAttrs {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut attrs = FieldAttrs::default();
    if let Some(TokenTree::Ident(id)) = tokens.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(g)) = tokens.get(1) {
                for tt in g.stream() {
                    if let TokenTree::Ident(flag) = tt {
                        match flag.to_string().as_str() {
                            "skip" => attrs.skip = true,
                            "default" => attrs.default = true,
                            other => {
                                panic!("serde_derive shim: unsupported serde attribute `{other}`")
                            }
                        }
                    }
                }
            }
        }
    }
    attrs
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)` etc.
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skip a type expression: everything until a comma at angle-bracket depth 0.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attr_groups = skip_attributes(&tokens, &mut i);
        let attrs = attr_groups.into_iter().fold(FieldAttrs::default(), |a, b| FieldAttrs {
            skip: a.skip || b.skip,
            default: a.default || b.default,
        });
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        // Consume the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        // Tuple-variant fields may carry attributes and visibility too.
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let fname = &f.name;
        pushes.push_str(&format!(
            "entries.push((\"{fname}\".to_string(), \
             ::serde::Serialize::to_value(&self.{fname})));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 let _ = &mut entries;\n\
                 ::serde::json::Value::Obj(entries)\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.attrs.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else if f.attrs.default {
            inits.push_str(&format!(
                "{fname}: ::serde::__private::get_field_or_default(entries, \"{fname}\")?,\n"
            ));
        } else {
            inits.push_str(&format!(
                "{fname}: ::serde::__private::get_field(entries, \"{fname}\")?,\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 let entries = ::serde::__private::as_object(v, \"{name}\")?;\n\
                 let _ = entries;\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::json::Value::Str(\"{vname}\".to_string()),\n"
                ));
            }
            VariantKind::Struct(fields) => {
                let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut pushes = String::new();
                for f in fields {
                    if f.attrs.skip {
                        continue;
                    }
                    let fname = &f.name;
                    pushes.push_str(&format!(
                        "fields.push((\"{fname}\".to_string(), \
                         ::serde::Serialize::to_value({fname})));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         let _ = &mut fields;\n\
                         ::serde::json::Value::Obj(vec![(\"{vname}\".to_string(), ::serde::json::Value::Obj(fields))])\n\
                     }}\n",
                    bindings.join(", ")
                ));
            }
            VariantKind::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vname}(f0) => ::serde::json::Value::Obj(vec![\
                     (\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let items: Vec<String> =
                    binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::json::Value::Obj(vec![\
                     (\"{vname}\".to_string(), ::serde::json::Value::Arr(vec![{}]))]),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantKind::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    let fname = &f.name;
                    if f.attrs.skip {
                        inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                    } else if f.attrs.default {
                        inits.push_str(&format!(
                            "{fname}: ::serde::__private::get_field_or_default(fields, \"{fname}\")?,\n"
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{fname}: ::serde::__private::get_field(fields, \"{fname}\")?,\n"
                        ));
                    }
                }
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let fields = ::serde::__private::as_object(inner, \"{name}::{vname}\")?;\n\
                         let _ = fields;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}\n"
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => match inner {{\n\
                         ::serde::json::Value::Arr(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vname}({})),\n\
                         _ => ::std::result::Result::Err(::serde::json::Error::new(\
                             \"expected {n}-element array for {name}::{vname}\")),\n\
                     }},\n",
                    gets.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 match v {{\n\
                     ::serde::json::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::json::Error::new(\
                             format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::json::Value::Obj(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::json::Error::new(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::json::Error::new(format!(\
                         \"expected string or 1-entry object for {name}, got {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}

//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json),
//! built on the vendored `serde` shim's JSON data model.
#![deny(rustdoc::broken_intra_doc_links)]

pub use serde::json::{Error, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize `value` to an indented JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_value(), 0))
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&Value::parse(text)?)
}

fn pretty(v: &Value, depth: usize) -> String {
    let pad = "  ".repeat(depth + 1);
    let close = "  ".repeat(depth);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            let body: Vec<String> =
                items.iter().map(|item| format!("{pad}{}", pretty(item, depth + 1))).collect();
            format!("[\n{}\n{close}]", body.join(",\n"))
        }
        Value::Obj(entries) if !entries.is_empty() => {
            let body: Vec<String> = entries
                .iter()
                .map(|(k, val)| {
                    let mut key = String::new();
                    Value::Str(k.clone()).write_into(&mut key);
                    format!("{pad}{key}: {}", pretty(val, depth + 1))
                })
                .collect();
            format!("{{\n{}\n{close}}}", body.join(",\n"))
        }
        other => other.to_json(),
    }
}

/// Internal helper so `pretty` can reuse the compact string escaping.
trait WriteInto {
    fn write_into(&self, out: &mut String);
}
impl WriteInto for Value {
    fn write_into(&self, out: &mut String) {
        out.push_str(&self.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_strings() {
        let v: Vec<f64> = vec![1.5, -2.25, 0.0];
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}

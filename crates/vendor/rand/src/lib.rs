//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand 0.8`: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods the
//! codebase actually calls (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — exactly the
//! construction `rand_xoshiro` uses — so streams are deterministic,
//! high-quality, and cheap. The bit streams are *not* identical to upstream
//! `rand`'s ChaCha-based `StdRng`; all reproduction experiments in this
//! repository pin seeds against this implementation.
#![deny(rustdoc::broken_intra_doc_links)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a reproducible generator from an integer seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly "at standard" (`rng.gen()`):
/// floats in `[0, 1)`, integers over their full range, fair booleans.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits mapped into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method
/// (bias ≤ 2⁻⁶⁴; negligible and rejection-free).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type: `rng.gen::<f64>()` ∈ `[0, 1)`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open (`a..b`) or inclusive (`a..=b`) range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            mean += u;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");

        for _ in 0..1_000 {
            let k = rng.gen_range(3..9usize);
            assert!((3..9).contains(&k));
            let j = rng.gen_range(0..=4u32);
            assert!(j <= 4);
            let x = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}

//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Only [`scope`] is provided, implemented over `std::thread::scope`
//! (stabilized in Rust 1.63, after crossbeam's API was designed). As in
//! crossbeam, `scope` returns `Err` instead of panicking when a worker
//! thread panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Placeholder passed to [`Scope::spawn`] closures where crossbeam passes a
/// nested scope handle. This workspace's workers never spawn nested threads,
/// so the value is inert.
#[derive(Debug, Clone, Copy)]
pub struct NestedScope;

/// Scope handle allowing borrowing spawns, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker that may borrow from the enclosing stack frame.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(|| f(NestedScope))
    }
}

/// Run `f` with a scope handle; all spawned workers are joined before this
/// returns. A panicking worker yields `Err(payload)` rather than unwinding.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    let s: u64 = chunk.iter().sum();
                    total.fetch_add(s, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn panic_becomes_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_handles_return_values() {
        let r = super::scope(|scope| {
            let h1 = scope.spawn(|_| 21);
            let h2 = scope.spawn(|_| 21);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}

//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the slice of the criterion API the workspace's micro-benchmarks
//! use (`bench_function`, `benchmark_group`, `iter`, [`black_box`], the
//! [`criterion_group!`] / [`criterion_main!`] macros) with a simple
//! calibrated wall-clock timer: warm up, pick an iteration count targeting
//! ~0.2 s per benchmark, report mean time per iteration. No statistics,
//! plots, or HTML reports.
#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Same contract as `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    /// Target measurement time per benchmark.
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { target: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Run one benchmark: calibrate an iteration count against the target
    /// time, then measure and print mean ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration pass: one iteration to estimate cost.
        let mut calib = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut calib);
        let per_iter = calib.elapsed.max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut bench = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bench);
        let ns = bench.elapsed.as_nanos() as f64 / bench.iters as f64;
        println!("{name:<44} {:>12}/iter  ({} iters)", format_ns(ns), bench.iters);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { parent: self }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Scoped collection of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.parent.bench_function(name, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { target: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("grouped", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}

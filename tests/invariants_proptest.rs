//! Property-based tests (proptest) of the core invariants, across crates.

use mflb::core::meanfield::{mean_field_step, per_state_arrival_rates};
use mflb::core::{DecisionRule, StateDist};
use mflb::linalg::{expm, Mat};
use mflb::policy::{jsq_rule, softmin_rule};
use mflb::queue::sampler::{AliasTable, Sampler};
use mflb::queue::BirthDeathQueue;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a probability distribution over `n` states.
fn dist_strategy(n: usize) -> impl Strategy<Value = StateDist> {
    proptest::collection::vec(0.01f64..1.0, n).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        StateDist::new(raw.into_iter().map(|v| v / total).collect())
    })
}

/// Strategy: a decision rule over `zs` states with d = 2 from raw logits.
fn rule_strategy(zs: usize) -> impl Strategy<Value = DecisionRule> {
    proptest::collection::vec(-3.0f64..3.0, zs * zs * 2)
        .prop_map(move |logits| DecisionRule::from_logits(zs, 2, &logits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 18–19 conservation: the measure-weighted per-state arrival
    /// rates always sum to λ — every packet lands in exactly one queue.
    #[test]
    fn arrival_rates_conserve_lambda(
        nu in dist_strategy(6),
        rule in rule_strategy(6),
        lambda in 0.0f64..3.0,
    ) {
        let rates = per_state_arrival_rates(&nu, &rule, lambda);
        let total: f64 = rates.iter().enumerate().map(|(z, r)| nu.prob(z) * r).sum();
        prop_assert!((total - lambda).abs() < 1e-9, "total {total} vs λ {lambda}");
        prop_assert!(rates.iter().all(|r| r.is_finite() && *r >= -1e-12));
    }

    /// The exact mean-field step maps distributions to distributions and
    /// never drops more than arrives.
    #[test]
    fn mean_field_step_preserves_simplex(
        nu in dist_strategy(6),
        rule in rule_strategy(6),
        lambda in 0.0f64..2.0,
        dt in 0.1f64..10.0,
    ) {
        let step = mean_field_step(&nu, &rule, lambda, 1.0, dt);
        let mass: f64 = step.next_dist.as_slice().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(step.next_dist.as_slice().iter().all(|&p| p >= 0.0));
        prop_assert!(step.expected_drops >= -1e-12);
        prop_assert!(step.expected_drops <= lambda * dt + 1e-9);
    }

    /// exp(Q·t) of a row-convention generator is a stochastic matrix.
    #[test]
    fn expm_of_generator_is_stochastic(
        lam in 0.0f64..3.0,
        mu in 0.0f64..3.0,
        t in 0.01f64..20.0,
        b in 1usize..8,
    ) {
        let q = BirthDeathQueue::new(lam, mu, b).generator().scaled(t);
        let p = expm(&q);
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8, "row {i} sums to {s}");
            prop_assert!(p.row(i).iter().all(|&v| (-1e-10..=1.0 + 1e-10).contains(&v)));
        }
    }

    /// expm additivity along the time axis: exp(Q(s+t)) = exp(Qs)·exp(Qt)
    /// (Q commutes with itself).
    #[test]
    fn expm_time_additivity(
        s in 0.01f64..5.0,
        t in 0.01f64..5.0,
    ) {
        let q = BirthDeathQueue::new(0.9, 1.0, 5).generator();
        let whole = expm(&q.scaled(s + t));
        let split = expm(&q.scaled(s)).matmul(&expm(&q.scaled(t)));
        prop_assert!(whole.max_abs_diff(&split) < 1e-9);
    }

    /// Decision rules built from logits are always row-stochastic, and the
    /// softmin family interpolates between RND and JSQ pointwise.
    #[test]
    fn softmin_family_is_monotone(beta in 0.0f64..16.0) {
        let soft = softmin_rule(6, 2, beta);
        for row in 0..soft.num_rows() {
            let mass: f64 = soft.row(row).iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-9);
        }
        // In any strictly ordered pair, the shorter queue gets ≥ 1/2 and
        // no more than JSQ's 1.
        let jsq = jsq_rule(6, 2);
        for a in 0..6usize {
            for b in 0..6usize {
                if a < b {
                    let ps = soft.prob(&[a, b], 0);
                    prop_assert!(ps >= 0.5 - 1e-9);
                    prop_assert!(ps <= jsq.prob(&[a, b], 0) + 1e-9);
                }
            }
        }
    }

    /// Multinomial sampling allocates exactly n trials when probabilities
    /// sum to one, and marginals stay inside 6σ bands.
    #[test]
    fn multinomial_allocates_everything(seed in 0u64..1000, n in 1u64..100_000) {
        let probs = [0.4, 0.3, 0.2, 0.1];
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = Sampler::multinomial(&mut rng, n, &probs);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
        for (c, p) in counts.iter().zip(probs.iter()) {
            let mean = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt().max(1.0);
            prop_assert!((*c as f64 - mean).abs() <= 6.5 * sd);
        }
    }

    /// Alias tables never emit zero-weight categories.
    #[test]
    fn alias_table_zero_weights_never_drawn(seed in 0u64..500) {
        let weights = [0.0, 2.0, 0.0, 1.0, 3.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = table.sample(&mut rng);
            prop_assert!(weights[k] > 0.0, "drew zero-weight category {k}");
        }
    }

    /// Gillespie epoch simulation respects the conservation law and the
    /// buffer bound for arbitrary rates and starts.
    #[test]
    fn gillespie_epoch_conservation(
        lam in 0.0f64..3.0,
        start in 0usize..6,
        dt in 0.1f64..10.0,
        seed in 0u64..500,
    ) {
        let q = BirthDeathQueue::new(lam, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(seed);
        let o = q.simulate_epoch(start, dt, &mut rng);
        prop_assert!(o.final_state <= 5);
        prop_assert_eq!(
            o.final_state as i64,
            start as i64 + o.accepted as i64 - o.served as i64
        );
    }

    /// Matrix identities: (A·B)ᵀ = Bᵀ·Aᵀ on random small matrices.
    #[test]
    fn matmul_transpose_identity(
        a_vals in proptest::collection::vec(-2.0f64..2.0, 12),
        b_vals in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        let a = Mat::from_vec(3, 4, a_vals);
        let b = Mat::from_vec(4, 3, b_vals);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }
}

//! Seed-pinned regression tests for all five ported engines (plus the new
//! job-level engine): one episode under a fixed `run_rng` seed must
//! reproduce the exact drop totals captured from the **pre-refactor**
//! build (PR 1 tree, bespoke per-engine episode loops), proving the
//! unified stateful-`Engine` port changed no distributional behaviour —
//! the RNG streams are bit-identical.
//!
//! If an intentional behaviour change ever breaks these, re-capture the
//! constants (print `total_drops.to_bits()`) and say so in the PR.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{
    CrashFaults, FaultPlan, JobSizeLaw, ObservationFaults, OverloadWindow, StragglerWindow,
    SystemConfig, Topology,
};
use mflb::linalg::stats::Summary;
use mflb::policy::{jsq_rule, sed_rule};
use mflb::queue::hetero::ServerPool;
use mflb::queue::{ArrivalProcess, PhaseType};
use mflb::sim::{
    run_episode, run_rng, serve, AggregateEngine, EngineSpec, EventEngine, FifoEngine, GraphEngine,
    HeteroEngine, JobSource, PerClientEngine, PhAggregateEngine, Scenario, ServeOptions,
    ServiceLaw, StaggeredEngine, StepMode,
};

/// High constant load makes drops frequent, so the pinned totals are
/// sensitive to any perturbation of the sampling order.
fn hot(mut c: SystemConfig) -> SystemConfig {
    c.arrivals = ArrivalProcess::constant(0.95);
    c
}

fn jsq() -> FixedRulePolicy {
    FixedRulePolicy::new(jsq_rule(6, 2), "JSQ(2)")
}

#[test]
fn per_client_engine_reproduces_pre_refactor_drops() {
    let engine = PerClientEngine::new(hot(SystemConfig::paper().with_size(400, 20).with_dt(2.0)));
    let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 1)).total_drops;
    assert_eq!(drops.to_bits(), 0x4002cccccccccccd, "got {drops}");
}

#[test]
fn aggregate_engine_reproduces_pre_refactor_drops() {
    let engine = AggregateEngine::new(hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0)));
    let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 2)).total_drops;
    assert_eq!(drops.to_bits(), 0x4014666666666666, "got {drops}");
}

#[test]
fn hetero_engine_reproduces_pre_refactor_drops() {
    let pool = ServerPool::two_speed(10, 1.6, 10, 0.4, 5);
    let engine =
        HeteroEngine::new(hot(SystemConfig::paper().with_size(800, 20).with_dt(2.0)), pool);
    let sed = FixedRulePolicy::new(sed_rule(6, 2, engine.class_rates()), "SED(2)");
    let drops = run_episode(&engine, &sed, 20, &mut run_rng(0xC0FFEE, 3)).total_drops;
    assert_eq!(drops.to_bits(), 0x3ffe666666666666, "got {drops}");
}

#[test]
fn staggered_engine_reproduces_pre_refactor_drops() {
    let engine =
        StaggeredEngine::new(hot(SystemConfig::paper().with_size(500, 10).with_dt(2.0)), 3);
    let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 4)).total_drops;
    assert_eq!(drops.to_bits(), 0x4014ccccccccccce, "got {drops}");
}

#[test]
fn ph_engine_reproduces_pre_refactor_drops() {
    let engine = PhAggregateEngine::new(
        hot(SystemConfig::paper().with_size(400, 20).with_dt(3.0)),
        PhaseType::fit_mean_scv(1.0, 2.0),
    );
    let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 5)).total_drops;
    assert_eq!(drops.to_bits(), 0x4020e66666666666, "got {drops}");
}

#[test]
fn full_mesh_graph_engine_reproduces_the_aggregate_pinned_drops() {
    // The graph engine's degenerate full-mesh case must follow the
    // aggregate engine's exact RNG call sequence — same pinned constant as
    // `aggregate_engine_reproduces_pre_refactor_drops`, same seed.
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let engine = GraphEngine::new(cfg, Topology::FullMesh);
    let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 2)).total_drops;
    assert_eq!(drops.to_bits(), 0x4014666666666666, "got {drops}");
}

#[test]
fn ring_graph_engine_reproduces_its_introduction_drops() {
    // Pinned at the PR that introduced the graph engine: the per-node
    // multinomial draw order is part of the regression contract.
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let engine = GraphEngine::new(cfg, Topology::Ring { radius: 2 });
    let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 6)).total_drops;
    assert_eq!(drops.to_bits(), 0x4011333333333333, "got {drops}");
}

#[test]
fn sharded_ring_graph_engine_reproduces_its_introduction_drops() {
    // Pinned at the PR that introduced sharded epoch stepping: the
    // derived-stream scheme (dyadic home counts, per-dispatcher assignment
    // streams, per-queue service streams) is a regression contract of its
    // own, independent of the shard size and worker count actually used.
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let base = GraphEngine::new(cfg, Topology::Ring { radius: 2 }).with_mode(StepMode::Sharded);
    for (shard, workers) in [(1 << 20, 1), (7, 3)] {
        let engine = base.clone().with_shard_size(shard).with_workers(workers);
        let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 6)).total_drops;
        assert_eq!(drops.to_bits(), 0x4013333333333332, "got {drops} ({shard}, {workers})");
    }
}

#[test]
fn event_engine_reproduces_its_introduction_drops() {
    // Pinned at the PR that introduced the continuous-time event engine:
    // all per-job randomness (interarrival gaps, sizes, routing) flows
    // through counter-keyed streams, so heap refactors cannot perturb
    // this value. One constant per job-size family.
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let exp = EventEngine::new(cfg.clone(), JobSizeLaw::Exponential { rate: 1.0 });
    let drops = run_episode(&exp, &jsq(), 20, &mut run_rng(0xC0FFEE, 7)).total_drops;
    assert_eq!(drops.to_bits(), 0x4012eeeeeeeeeeee, "got {drops}");

    let bp = EventEngine::new(cfg, JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 });
    let drops = run_episode(&bp, &jsq(), 20, &mut run_rng(0xC0FFEE, 7)).total_drops;
    assert_eq!(drops.to_bits(), 0x3fe4444444444444, "got {drops}");
}

#[test]
fn serve_run_reproduces_its_introduction_report() {
    // The serve loop is a deterministic function of (engine, policy,
    // source, seed): a synthetic heavy-tailed run is pinned bit-exact on
    // its accumulated statistics, not just its counters.
    let cfg = hot(SystemConfig::paper().with_size(400, 20).with_dt(2.0));
    let engine = EventEngine::new(cfg, JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 });
    let opts = ServeOptions { duration: Some(30.0), seed: 9, ..Default::default() };
    let report = serve(&engine, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {}).unwrap();
    assert_eq!(report.intervals, 15);
    assert_eq!(report.jobs_arrived, 579);
    assert_eq!(report.mean_sojourn.to_bits(), 0x3ff116cff1b7b07b, "got {}", report.mean_sojourn);
    assert_eq!(report.drop_fraction.to_bits(), 0x3f7c4c0c61456a8e, "got {}", report.drop_fraction);
}

#[test]
fn event_engine_matches_the_fifo_engine_in_law_for_exponential_sizes() {
    // Unit-mean exponential job sizes align the event engine's
    // queue-length process with `FifoEngine`'s in law; the engines differ
    // only in how routing randomness is organized (per-job thinned-Poisson
    // draws vs a per-epoch frozen multinomial), so per-epoch drop and
    // queue-length statistics agree within Monte-Carlo tolerance, not
    // bit-for-bit.
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let event = EventEngine::new(cfg.clone(), JobSizeLaw::Exponential { rate: 1.0 });
    let fifo = FifoEngine::new(cfg);
    let policy = jsq();
    let (mut da, mut db) = (Summary::new(), Summary::new());
    let (mut qa, mut qb) = (Summary::new(), Summary::new());
    let episode_mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    for r in 0..50 {
        let a = run_episode(&event, &policy, 15, &mut run_rng(61, r));
        let b = run_episode(&fifo, &policy, 15, &mut run_rng(62, r));
        da.push(a.total_drops);
        db.push(b.total_drops);
        qa.push(episode_mean(&a.mean_queue_len));
        qb.push(episode_mean(&b.mean_queue_len));
    }
    let tol = 4.0 * (da.std_err() + db.std_err());
    assert!(
        (da.mean() - db.mean()).abs() < tol,
        "drops: event {} vs fifo {} (tol {tol})",
        da.mean(),
        db.mean()
    );
    let tol = 4.0 * (qa.std_err() + qb.std_err());
    assert!(
        (qa.mean() - qb.mean()).abs() < tol,
        "queue length: event {} vs fifo {} (tol {tol})",
        qa.mean(),
        qb.mean()
    );
}

#[test]
fn scenario_built_engines_match_the_pinned_values_too() {
    // The scenario layer must construct engines with identical behaviour
    // to direct construction — spot-checked against two pinned values.
    let agg = Scenario::new(
        hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0)),
        EngineSpec::Aggregate,
    )
    .build()
    .unwrap();
    let drops = run_episode(&agg, &jsq(), 20, &mut run_rng(0xC0FFEE, 2)).total_drops;
    assert_eq!(drops.to_bits(), 0x4014666666666666);

    let ph = Scenario::new(
        hot(SystemConfig::paper().with_size(400, 20).with_dt(3.0)),
        EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv: 2.0 } },
    )
    .build()
    .unwrap();
    let drops = run_episode(&ph, &jsq(), 20, &mut run_rng(0xC0FFEE, 5)).total_drops;
    assert_eq!(drops.to_bits(), 0x4020e66666666666);

    let event = Scenario::new(
        hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0)),
        EngineSpec::Event { job_size: JobSizeLaw::Exponential { rate: 1.0 } },
    )
    .build()
    .unwrap();
    let drops = run_episode(&event, &jsq(), 20, &mut run_rng(0xC0FFEE, 7)).total_drops;
    assert_eq!(drops.to_bits(), 0x4012eeeeeeeeeeee);
}

/// The fault plan of the pinned faulted runs: every fault family active
/// at once, so the pinned constants cover the crash renewal streams, the
/// straggler/overload window arithmetic and the observation-drop stream.
fn regression_fault_plan() -> FaultPlan {
    FaultPlan {
        crashes: Some(CrashFaults { mttf: 20.0, mttr: 5.0 }),
        stragglers: vec![StragglerWindow { start: 9.0, end: 30.0, factor: 0.5, queues: None }],
        observation: Some(ObservationFaults { drop_prob: 0.3 }),
        overloads: vec![OverloadWindow { start: 30.0, end: 48.0, factor: 1.4 }],
    }
}

#[test]
fn faulted_event_and_fifo_engines_reproduce_their_introduction_drops() {
    // Pinned at the PR that introduced deterministic fault injection:
    // all fault randomness flows through `(epoch_base, salt, index)`
    // counter streams, so these values are a regression contract for the
    // crash renewal sampling order on top of the engines' own streams.
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let event = EventEngine::new(cfg.clone(), JobSizeLaw::Exponential { rate: 1.0 })
        .with_faults(regression_fault_plan());
    let drops = run_episode(&event, &jsq(), 20, &mut run_rng(0xC0FFEE, 7)).total_drops;
    assert_eq!(drops.to_bits(), 0x40333bbbbbbbbbbb, "got {drops}");

    let fifo = FifoEngine::new(cfg).with_faults(regression_fault_plan());
    let drops = run_episode(&fifo, &jsq(), 20, &mut run_rng(0xC0FFEE, 8)).total_drops;
    assert_eq!(drops.to_bits(), 0x403499999999999a, "got {drops}");
}

#[test]
fn faulted_sharded_graph_engine_is_shard_and_worker_independent() {
    // The faulted epoch's service multipliers are computed once, serially,
    // from the counter streams before the parallel service pass — so the
    // pinned value must be reproduced by any (shard size, worker count).
    let cfg = hot(SystemConfig::paper().with_size(900, 30).with_dt(3.0));
    let base = GraphEngine::new(cfg, Topology::Ring { radius: 2 })
        .with_mode(StepMode::Sharded)
        .with_faults(regression_fault_plan());
    for (shard, workers) in [(1 << 20, 1), (7, 3)] {
        let engine = base.clone().with_shard_size(shard).with_workers(workers);
        let drops = run_episode(&engine, &jsq(), 20, &mut run_rng(0xC0FFEE, 6)).total_drops;
        assert_eq!(drops.to_bits(), 0x4039a22222222223, "got {drops} ({shard}, {workers})");
    }
}

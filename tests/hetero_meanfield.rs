//! Cross-crate check of the heterogeneous mean-field model (§2.5
//! extension): the finite heterogeneous engine must track the hetero
//! mean-field drops as the pool grows — Theorem 1 carried to the
//! composite-state extension.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{HeteroMeanField, SystemConfig};
use mflb::linalg::stats::Summary;
use mflb::policy::sed_rule;
use mflb::queue::hetero::ServerPool;
use mflb::queue::ArrivalProcess;
use mflb::sim::{run_episode, run_rng, HeteroEngine};

#[test]
fn finite_hetero_system_tracks_hetero_mean_field() {
    let dt = 4.0;
    let horizon = 15usize;
    let class_rates = [1.6f64, 0.4];
    let rule = sed_rule(6, 2, &class_rates);

    // Mean-field reference at constant λ = 0.9.
    let mf = HeteroMeanField::all_empty(vec![0.5, 0.5], class_rates.to_vec(), 5);
    let (_, mf_drops) = mf.rollout_conditioned(&rule, &vec![0.9; horizon], dt);

    // Finite pools of growing size, same constant arrival level.
    let mut gaps = Vec::new();
    for &half in &[10usize, 40, 160] {
        let mut cfg =
            SystemConfig::paper().with_dt(dt).with_size(((2 * half) * (2 * half)) as u64, 2 * half);
        cfg.arrivals = ArrivalProcess::constant(0.9);
        let pool = ServerPool::two_speed(half, 1.6, half, 0.4, 5);
        let engine = HeteroEngine::new(cfg, pool);
        let policy = FixedRulePolicy::new(rule.clone(), "SED(2)");
        let mut s = Summary::new();
        for r in 0..24 {
            s.push(
                run_episode(&engine, &policy, horizon, &mut run_rng(half as u64, r)).total_drops,
            );
        }
        gaps.push(((s.mean() - mf_drops).abs(), s.std_err()));
    }
    // The largest pool must sit close to the limit (within noise + a
    // small finite-size allowance), and not farther than the smallest.
    let (gap_small, _) = gaps[0];
    let (gap_large, se_large) = gaps[2];
    assert!(
        gap_large <= gap_small + 4.0 * se_large,
        "gap must not grow with pool size: {gaps:?} (mean-field {mf_drops:.3})"
    );
    assert!(
        gap_large < 0.15 * mf_drops.max(1.0),
        "largest pool should be within 15% of the limit: {gaps:?} vs {mf_drops:.3}"
    );
}

//! Property-based certification of the distillation pass: for *arbitrary*
//! (random-weight) policy networks, slacks and small lattices, the
//! distilled table must never route outside the action library, must be
//! what `decide()` actually executes at every lattice vertex, and must
//! honor the polish sweep's certified Q-slack bound — with slack 0
//! collapsing to exact Q-agreement with the DP greedy policy.

use mflb::core::mdp::UpperPolicy;
use mflb::core::SystemConfig;
use mflb::nn::{Activation, Mlp};
use mflb::queue::mmpp::ArrivalProcess;
use mflb::rl::{
    distill_checkpoint, DistillConfig, DistilledCheckpoint, OracleConfig, PolicyShape, PpoConfig,
    TrainingCheckpoint, CHECKPOINT_FORMAT_VERSION, DISTILLED_FORMAT_VERSION,
};
use mflb::sim::{EngineSpec, Scenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny homogeneous scenario the oracle solves in milliseconds.
fn tiny_scenario(buffer: usize) -> Scenario {
    let arrivals =
        ArrivalProcess::new(vec![0.9, 0.6], vec![vec![0.8, 0.2], vec![0.5, 0.5]], vec![0.5, 0.5]);
    let mut config = SystemConfig::paper()
        .with_size(100, 10)
        .with_buffer(buffer)
        .with_dt(5.0)
        .with_arrivals(arrivals);
    config.eval_time = 100.0;
    Scenario::new(config, EngineSpec::Aggregate)
}

/// An untrained checkpoint with random network weights: distillation must
/// hold for arbitrary networks, not just converged ones.
fn synthetic_checkpoint(scenario: &Scenario, seed: u64) -> TrainingCheckpoint {
    let shape = PolicyShape::for_scenario(scenario);
    let mut rng = StdRng::seed_from_u64(seed);
    let policy_net = Mlp::new(&[shape.obs_dim(), 16, shape.act_dim()], Activation::Tanh, &mut rng);
    let value_net = Mlp::new(&[shape.obs_dim(), 16, 1], Activation::Tanh, &mut rng);
    TrainingCheckpoint {
        format_version: CHECKPOINT_FORMAT_VERSION,
        scenario: scenario.clone(),
        ppo: PpoConfig::paper(),
        seed,
        total_steps: 0,
        curve: Vec::new(),
        policy_net,
        value_net,
        log_std: vec![-0.5; shape.act_dim()],
    }
}

/// `unwrap_err` without requiring `DistillResult: Debug` (it wraps the
/// non-`Debug` oracle policy).
fn expect_err(result: Result<mflb::rl::DistillResult, String>) -> String {
    match result {
        Err(e) => e,
        Ok(_) => panic!("expected an error, got a distilled checkpoint"),
    }
}

fn distill_config(grid: usize, slack: f64) -> DistillConfig {
    DistillConfig {
        oracle: OracleConfig { grid_resolution: grid, cache_dir: None, ..OracleConfig::default() },
        polish_slack: slack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn distilled_table_is_certified_at_every_vertex(
        buffer in 1usize..=2,
        grid in 3usize..=5,
        slack_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let slack = [0.0, 0.01, 0.05][slack_idx];
        let scenario = tiny_scenario(buffer);
        let ckpt = synthetic_checkpoint(&scenario, seed);
        let config = distill_config(grid, slack);
        let result = distill_checkpoint(&ckpt, &scenario, &config).unwrap();
        let table = &result.checkpoint;
        let sol = result.oracle.policy.solution();
        let lattice = sol.grid();
        let levels = sol.num_levels();
        let policy = table.into_policy().unwrap();

        prop_assert_eq!(table.table.len(), lattice.num_points() * levels);
        prop_assert!(table.nn_fraction >= 0.0 && table.nn_fraction <= 1.0);

        for s in lattice.indices() {
            let nu = lattice.point(s);
            for l in 0..levels {
                // 1. Never routes outside the action library.
                let a = table.table[s * levels + l] as usize;
                prop_assert!(a < table.action_rules.len(),
                    "table routes to {a}, library has {}", table.action_rules.len());

                // 2. decide() at a lattice vertex IS the table lookup
                //    (vertices snap to themselves).
                prop_assert_eq!(policy.action_index(&nu, l), a);
                let decided = policy.decide(&nu, l, 0.0);
                prop_assert_eq!(&decided, &table.action_rules[a]);

                // 3. The certified Q-slack bound of the polish sweep.
                let q = sol.q_values(&nu, l);
                let best = q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let tolerance = slack * best.abs().max(1.0);
                prop_assert!(q[a] >= best - tolerance - 1e-9,
                    "vertex ({s}, {l}): Q(table) = {} but Q(best) = {best} (slack {slack})",
                    q[a]);

                // 4. Slack 0 ⇒ exact Q-agreement with the DP greedy policy.
                if slack == 0.0 {
                    prop_assert!((q[a] - best).abs() < 1e-12,
                        "slack 0 must force Q-agreement with the greedy action");
                }
            }
        }
    }
}

#[test]
fn distilled_checkpoint_roundtrips_through_json() {
    let scenario = tiny_scenario(2);
    let ckpt = synthetic_checkpoint(&scenario, 7);
    let result = distill_checkpoint(&ckpt, &scenario, &distill_config(4, 0.02)).unwrap();
    let json = result.checkpoint.to_json();
    let reloaded = DistilledCheckpoint::from_json(&json).unwrap();
    assert_eq!(reloaded.table, result.checkpoint.table);
    assert_eq!(reloaded.action_names, result.checkpoint.action_names);
    assert_eq!(reloaded.grid_resolution, result.checkpoint.grid_resolution);
    assert_eq!(reloaded.format_version, DISTILLED_FORMAT_VERSION);
}

#[test]
fn future_format_versions_are_rejected_on_load() {
    let scenario = tiny_scenario(1);
    let ckpt = synthetic_checkpoint(&scenario, 3);
    let mut distilled =
        distill_checkpoint(&ckpt, &scenario, &distill_config(3, 0.02)).unwrap().checkpoint;
    distilled.format_version = DISTILLED_FORMAT_VERSION + 1;
    let err = DistilledCheckpoint::from_json(&distilled.to_json()).unwrap_err();
    assert!(err.contains("format version"), "must name the version mismatch: {err}");
}

#[test]
fn heterogeneous_scenarios_are_rejected_with_a_readable_message() {
    let hetero = Scenario::new(
        tiny_scenario(2).config,
        EngineSpec::Hetero { rates: vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0] },
    );
    let ckpt = synthetic_checkpoint(&hetero, 11);
    let err = expect_err(distill_checkpoint(&ckpt, &hetero, &distill_config(3, 0.02)));
    assert!(err.contains("heterogeneous"), "must explain the rejection: {err}");
}

#[test]
fn negative_or_non_finite_slack_is_rejected() {
    let scenario = tiny_scenario(1);
    let ckpt = synthetic_checkpoint(&scenario, 5);
    for bad in [-0.1, f64::NAN, f64::INFINITY] {
        let err = expect_err(distill_checkpoint(&ckpt, &scenario, &distill_config(3, bad)));
        assert!(err.contains("slack"), "must name the bad flag: {err}");
    }
}

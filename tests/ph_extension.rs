//! Cross-crate integration tests for the phase-type service extension:
//! the queue substrate (`mflb-queue`), the PH mean-field model
//! (`mflb-core`) and the finite PH engine (`mflb-sim`) must agree with
//! each other and collapse to the exponential baseline at one phase.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, PhMeanFieldMdp, SystemConfig};
use mflb::linalg::stats::Summary;
use mflb::policy::{jsq_rule, rnd_rule, softmin_rule};
use mflb::queue::PhaseType;
use mflb::sim::{
    monte_carlo, run_episode, run_episode_conditioned, run_rng, AggregateEngine, PhAggregateEngine,
};

fn config() -> SystemConfig {
    SystemConfig::paper().with_dt(4.0).with_size(1_600, 40)
}

#[test]
fn whole_stack_collapses_to_exponential_at_one_phase() {
    // Mean-field: exact agreement over a long conditioned trajectory.
    let cfg = config();
    let policy = FixedRulePolicy::new(jsq_rule(cfg.num_states(), cfg.d), "JSQ(2)");
    let plain = MeanFieldMdp::new(cfg.clone());
    let ph = PhMeanFieldMdp::new(cfg.clone(), PhaseType::exponential(1.0));
    let seq: Vec<usize> = (0..60).map(|t| (t / 7) % 2).collect();
    let a = plain.rollout_conditioned(&policy, &seq);
    let b = ph.rollout_conditioned(&policy, &seq);
    assert!((a.total_return - b.total_return).abs() < 1e-8);

    // Finite engines: statistical agreement of episode totals.
    let agg = AggregateEngine::new(cfg.clone());
    let ph_engine = PhAggregateEngine::new(cfg.clone(), PhaseType::exponential(1.0));
    let mc = monte_carlo(&agg, &policy, 20, 40, 3, 0);
    let mut s = Summary::new();
    for r in 0..40 {
        s.push(run_episode(&ph_engine, &policy, 20, &mut run_rng(4, r)).total_drops);
    }
    let tol = 4.0 * (mc.drops.std_err() + s.std_err());
    assert!(
        (mc.mean() - s.mean()).abs() < tol,
        "plain {} vs PH-exponential {} (tol {tol})",
        mc.mean(),
        s.mean()
    );
}

#[test]
fn scv_ordering_holds_in_mean_field_and_finite_system() {
    let cfg = config();
    let policy = FixedRulePolicy::new(softmin_rule(cfg.num_states(), cfg.d, 1.0), "SOFT(1)");
    let seq = vec![0usize; 25];
    let mut mf = Vec::new();
    let mut fin = Vec::new();
    for &scv in &[0.25, 1.0, 4.0] {
        let service = PhaseType::fit_mean_scv(1.0, scv);
        let mdp = PhMeanFieldMdp::new(cfg.clone(), service.clone());
        mf.push(-mdp.rollout_conditioned(&policy, &seq).total_return);
        let engine = PhAggregateEngine::new(cfg.clone(), service);
        let mut s = Summary::new();
        for r in 0..24 {
            s.push(run_episode(&engine, &policy, 25, &mut run_rng(9, r)).total_drops);
        }
        fin.push(s.mean());
    }
    assert!(mf[0] < mf[1] && mf[1] < mf[2], "mean-field SCV ordering: {mf:?}");
    assert!(fin[0] < fin[1] && fin[1] < fin[2], "finite SCV ordering: {fin:?}");
}

#[test]
fn finite_ph_system_approaches_mean_field_with_size() {
    // |finite − mean-field| should shrink as M grows (Theorem 1 carried
    // to the extension).
    let service = PhaseType::fit_mean_scv(1.0, 2.0);
    let policy = FixedRulePolicy::new(
        rnd_rule(6, 2),
        "RND", // state-independent: isolates the queue-dynamics agreement
    );
    let horizon = 15;
    let seq = vec![0usize; horizon];
    let mut gaps = Vec::new();
    for &m in &[10usize, 40, 160] {
        let cfg = SystemConfig::paper().with_dt(4.0).with_size((m * m) as u64, m);
        let mdp = PhMeanFieldMdp::new(cfg.clone(), service.clone());
        let reference = -mdp.rollout_conditioned(&policy, &seq).total_return;
        let engine = PhAggregateEngine::new(cfg, service.clone());
        // Conditioned finite episodes (same arrival path) — the unified
        // driver handles the fixed λ sequence for every engine now.
        let mut s = Summary::new();
        for r in 0..30 {
            let rng = &mut run_rng(100 + m as u64, r);
            s.push(run_episode_conditioned(&engine, &policy, &seq, rng).total_drops);
        }
        gaps.push((s.mean() - reference).abs() / reference.max(1.0));
    }
    assert!(gaps[2] < gaps[0] + 0.02, "relative gap should not grow with M: {gaps:?}");
    assert!(gaps[2] < 0.1, "largest system should be within 10%: {gaps:?}");
}

#[test]
fn ph_fit_quality_is_exact_across_the_sweep_grid() {
    // The bins sweep these SCVs; the two-moment fit must be exact there.
    for &scv in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let ph = PhaseType::fit_mean_scv(1.0, scv);
        assert!((ph.mean() - 1.0).abs() < 1e-9, "scv {scv}");
        assert!((ph.scv() - scv).abs() < 1e-9, "scv {scv}");
    }
}

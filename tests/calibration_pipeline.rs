//! Cross-crate integration test of the measurement → fit → tune → deploy
//! calibration loop: a policy tuned against the *estimated* arrival
//! process must perform on the *true* system.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{jsq_rule, optimize_beta, softmin_rule};
use mflb::queue::{fit_mmpp, ArrivalProcess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy_trace(truth: &ArrivalProcess, len: usize, noise: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level = truth.sample_initial(&mut rng);
    (0..len)
        .map(|_| {
            let jitter: f64 = rng.gen_range(-noise..noise);
            let r = (truth.level_rate(level) + jitter).max(0.0);
            level = truth.step(level, &mut rng);
            r
        })
        .collect()
}

#[test]
fn tuned_on_fitted_model_performs_on_true_system() {
    let truth = ArrivalProcess::new(
        vec![0.92, 0.55],
        vec![vec![0.75, 0.25], vec![0.4, 0.6]],
        vec![0.5, 0.5],
    );
    let true_cfg = SystemConfig::paper().with_dt(5.0).with_arrivals(truth.clone());

    let fit = fit_mmpp(&noisy_trace(&truth, 3_000, 0.04, 7), 2);
    // Rates recovered within the noise band.
    assert!((fit.process.level_rate(0) - 0.92).abs() < 0.03);
    assert!((fit.process.level_rate(1) - 0.55).abs() < 0.03);

    let fitted_cfg = true_cfg.clone().with_arrivals(fit.process);
    let beta_fitted = optimize_beta(&fitted_cfg, 60, 8, 11).beta;
    let beta_oracle = optimize_beta(&true_cfg, 60, 8, 11).beta;
    assert!(
        (beta_fitted - beta_oracle).abs() < 0.5 * beta_oracle.max(0.2),
        "fitted β* {beta_fitted} far from oracle {beta_oracle}"
    );

    // Deploy on the TRUE mean-field model: tuned softmin beats JSQ(2).
    let zs = true_cfg.num_states();
    let mdp = MeanFieldMdp::new(true_cfg.clone());
    let soft = FixedRulePolicy::new(softmin_rule(zs, 2, beta_fitted), "SOFT(fitted)");
    let jsq = FixedRulePolicy::new(jsq_rule(zs, 2), "JSQ(2)");
    let mut rng = StdRng::seed_from_u64(13);
    let (mut v_soft, mut v_jsq) = (0.0, 0.0);
    for _ in 0..12 {
        let seq = mflb::core::theory::sample_lambda_sequence(&true_cfg, 60, &mut rng);
        v_soft += mdp.rollout_conditioned(&soft, &seq).total_return;
        v_jsq += mdp.rollout_conditioned(&jsq, &seq).total_return;
    }
    assert!(
        v_soft > v_jsq,
        "calibrated softmin {v_soft:.1} must beat JSQ(2) {v_jsq:.1} on the true system"
    );
}

#[test]
fn fit_quality_degrades_gracefully_with_noise() {
    // Heavier measurement noise widens the level estimates but the fit
    // still lands in the right neighbourhood — the calibration loop is
    // not brittle.
    let truth = ArrivalProcess::paper_default();
    for &(noise, tol) in &[(0.02, 0.01), (0.1, 0.05)] {
        let fit = fit_mmpp(&noisy_trace(&truth, 5_000, noise, 17), 2);
        assert!(
            (fit.process.level_rate(0) - 0.9).abs() < tol,
            "noise {noise}: high level {}",
            fit.process.level_rate(0)
        );
        assert!(
            (fit.process.level_rate(1) - 0.6).abs() < tol,
            "noise {noise}: low level {}",
            fit.process.level_rate(1)
        );
    }
}

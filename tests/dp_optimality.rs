//! Cross-crate integration tests for the exact-DP yardstick: the lattice
//! value-iteration policy (`mflb-dp`) must dominate the paper's
//! baselines in the continuous mean-field MDP *and* carry that advantage
//! onto the finite system (`mflb-sim`).

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, StateDist, SystemConfig};
use mflb::dp::{ActionLibrary, DpConfig, DpSolution};
use mflb::policy::{jsq_rule, optimize_beta, rnd_rule, softmin_rule};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dp_policy(cfg: &SystemConfig, g: usize) -> mflb::dp::GridPolicy {
    let dp_cfg = DpConfig { grid_resolution: g, tol: 1e-7, max_sweeps: 4000, threads: 0 };
    DpSolution::solve(cfg, ActionLibrary::softmin_default(cfg.num_states(), cfg.d), &dp_cfg)
        .into_policy()
}

#[test]
// Long-running reproduction test (~30-80 s in debug): run with
// `cargo test -- --ignored`.
#[ignore = "full lattice DP solve; quarantined for CI speed"]
fn dp_dominates_baselines_in_continuous_mdp() {
    let cfg = SystemConfig::paper().with_dt(5.0);
    let zs = cfg.num_states();
    let dp = dp_policy(&cfg, 8);
    let mdp = MeanFieldMdp::new(cfg.clone());
    let jsq = FixedRulePolicy::new(jsq_rule(zs, cfg.d), "MF-JSQ(2)");
    let rnd = FixedRulePolicy::new(rnd_rule(zs, cfg.d), "MF-RND");
    let mut rng = StdRng::seed_from_u64(1);
    let horizon = 80;
    let (mut v_dp, mut v_jsq, mut v_rnd) = (0.0, 0.0, 0.0);
    for _ in 0..10 {
        let seq = mflb::core::theory::sample_lambda_sequence(&cfg, horizon, &mut rng);
        v_dp += mdp.rollout_conditioned(&dp, &seq).total_return;
        v_jsq += mdp.rollout_conditioned(&jsq, &seq).total_return;
        v_rnd += mdp.rollout_conditioned(&rnd, &seq).total_return;
    }
    assert!(v_dp > v_jsq, "DP {v_dp:.1} must beat JSQ {v_jsq:.1} at dt=5");
    assert!(v_dp > v_rnd, "DP {v_dp:.1} must beat RND {v_rnd:.1}");
}

#[test]
// Long-running reproduction test (~30-80 s in debug): run with
// `cargo test -- --ignored`.
#[ignore = "full lattice DP solve; quarantined for CI speed"]
fn dp_matches_or_beats_the_best_constant_softmin() {
    // The DP optimum over the softmin family with ν-feedback must be at
    // least as good as the best *constant* softmin (β* search) — the
    // feedback can only add value.
    let cfg = SystemConfig::paper().with_dt(5.0);
    let zs = cfg.num_states();
    let dp = dp_policy(&cfg, 8);
    let res = optimize_beta(&cfg, 60, 8, 3);
    let soft = FixedRulePolicy::new(softmin_rule(zs, cfg.d, res.beta), "SOFT");
    let mdp = MeanFieldMdp::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let (mut v_dp, mut v_soft) = (0.0, 0.0);
    for _ in 0..12 {
        let seq = mflb::core::theory::sample_lambda_sequence(&cfg, 60, &mut rng);
        v_dp += mdp.rollout_conditioned(&dp, &seq).total_return;
        v_soft += mdp.rollout_conditioned(&soft, &seq).total_return;
    }
    // Small slack: lattice resolution vs the continuous β refinement.
    assert!(
        v_dp >= v_soft - 0.02 * v_soft.abs(),
        "DP {v_dp:.2} must not lose to constant softmin {v_soft:.2}"
    );
}

#[test]
// Long-running reproduction test (~30-80 s in debug): run with
// `cargo test -- --ignored`.
#[ignore = "full lattice DP solve; quarantined for CI speed"]
fn dp_advantage_transfers_to_finite_system() {
    let cfg = SystemConfig::paper().with_dt(5.0).with_size(2_500, 50);
    let zs = cfg.num_states();
    let dp = dp_policy(&cfg, 8);
    let jsq = FixedRulePolicy::new(jsq_rule(zs, cfg.d), "JSQ(2)");
    let engine = AggregateEngine::new(cfg.clone());
    let horizon = cfg.eval_episode_len().min(60);
    let r_dp = monte_carlo(&engine, &dp, horizon, 30, 7, 0);
    let r_jsq = monte_carlo(&engine, &jsq, horizon, 30, 8, 0);
    let margin = 2.0 * (r_dp.drops.std_err() + r_jsq.drops.std_err());
    assert!(
        r_dp.mean() < r_jsq.mean() + margin,
        "finite-system DP drops {} should not exceed JSQ {} (margin {margin})",
        r_dp.mean(),
        r_jsq.mean()
    );
}

#[test]
// Long-running reproduction test (~30-80 s in debug): run with
// `cargo test -- --ignored`.
#[ignore = "full lattice DP solve; quarantined for CI speed"]
fn dp_greedy_interpolates_between_rnd_and_jsq_regimes() {
    // Sanity on the *structure* of the solution: at Δt = 1 the optimum
    // should play (numerically) JSQ from the empty start; at Δt = 10 it
    // should play something much softer.
    let sharp = {
        let cfg = SystemConfig::paper().with_dt(1.0);
        let dp_cfg = DpConfig { grid_resolution: 8, tol: 1e-7, max_sweeps: 4000, threads: 0 };
        DpSolution::solve(&cfg, ActionLibrary::softmin_default(6, 2), &dp_cfg)
    };
    let soft = {
        let cfg = SystemConfig::paper().with_dt(10.0);
        let dp_cfg = DpConfig { grid_resolution: 8, tol: 1e-7, max_sweeps: 4000, threads: 0 };
        DpSolution::solve(&cfg, ActionLibrary::softmin_default(6, 2), &dp_cfg)
    };
    let nu = StateDist::uniform(5);
    // Library indices: 0 = RND (β = 0) … 9 = β = 64 ≈ JSQ.
    let a_sharp = sharp.greedy_action(&nu, 0);
    let a_soft = soft.greedy_action(&nu, 0);
    assert!(
        a_sharp > a_soft,
        "Δt = 1 should play a sharper rule (idx {a_sharp}) than Δt = 10 (idx {a_soft})"
    );
}

//! Property-based invariants of the phase-type extension, for arbitrary
//! distributions, rules and fitted service laws.

use mflb::core::{ph_mean_field_step, DecisionRule, PhDist, StateDist};
use mflb::queue::{PhQueue, PhaseType};
use proptest::prelude::*;

/// Strategy: a random length distribution over `{0..B}` for B = 4.
fn dist_strategy() -> impl Strategy<Value = StateDist> {
    prop::collection::vec(0.01f64..1.0, 5).prop_map(|w| {
        let total: f64 = w.iter().sum();
        let mut probs: Vec<f64> = w.iter().map(|x| x / total).collect();
        let drift: f64 = 1.0 - probs.iter().sum::<f64>();
        probs[0] += drift;
        StateDist::new(probs)
    })
}

/// Strategy: a random row-stochastic decision rule for d = 2 over 5
/// states.
fn rule_strategy() -> impl Strategy<Value = DecisionRule> {
    prop::collection::vec(0.0f64..1.0, 25).prop_map(|ps| {
        DecisionRule::from_fn(5, 2, |tuple| {
            let p = ps[tuple[0] * 5 + tuple[1]].clamp(0.0, 1.0);
            vec![p, 1.0 - p]
        })
    })
}

/// Strategy: a fitted service law across the SCV range.
fn service_strategy() -> impl Strategy<Value = PhaseType> {
    (0.2f64..5.0).prop_map(|scv| PhaseType::fit_mean_scv(1.0, scv))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ph_step_preserves_mass_and_bounds_drops(
        nu in dist_strategy(),
        rule in rule_strategy(),
        service in service_strategy(),
        lambda in 0.0f64..1.5,
        dt in 0.2f64..8.0,
    ) {
        let joint = PhDist::from_lengths(&nu, &service);
        let step = ph_mean_field_step(&joint, &rule, lambda, &service, dt);
        let mass: f64 = step.next_dist.as_slice().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-8, "mass {mass}");
        prop_assert!(step.next_dist.as_slice().iter().all(|&p| p >= 0.0));
        prop_assert!(step.expected_drops >= -1e-12);
        prop_assert!(step.expected_drops <= lambda * dt + 1e-9,
            "drops {} exceed arrivals {}", step.expected_drops, lambda * dt);
    }

    #[test]
    fn length_marginal_roundtrips_through_lift(
        nu in dist_strategy(),
        service in service_strategy(),
    ) {
        let joint = PhDist::from_lengths(&nu, &service);
        prop_assert!(joint.length_marginal().l1_distance(&nu) < 1e-10);
    }

    #[test]
    fn fitted_laws_match_requested_moments(scv in 0.15f64..6.0, mean in 0.3f64..3.0) {
        let ph = PhaseType::fit_mean_scv(mean, scv);
        prop_assert!((ph.mean() - mean).abs() < 1e-8 * mean.max(1.0));
        prop_assert!((ph.scv() - scv).abs() < 1e-7,
            "fitted {} vs requested {scv}", ph.scv());
    }

    #[test]
    fn ph_queue_generator_is_conservative(
        service in service_strategy(),
        lambda in 0.0f64..2.0,
    ) {
        let q = PhQueue::new(lambda, service, 4);
        let g = q.generator();
        for i in 0..g.rows() {
            let row_sum: f64 = g.row(i).iter().sum();
            prop_assert!(row_sum.abs() < 1e-10, "row {i} sums to {row_sum}");
            prop_assert!(g[(i, i)] <= 1e-12, "diagonal must be nonpositive");
        }
    }

    #[test]
    fn ph_epoch_expectation_is_a_markov_kernel(
        service in service_strategy(),
        lambda in 0.0f64..1.5,
        dt in 0.2f64..6.0,
        start in 0usize..13,
    ) {
        let q = PhQueue::new(lambda, service, 4);
        let n = q.num_states();
        let idx = start % n;
        let mut v = vec![0.0; n];
        v[idx] = 1.0;
        let (dist, drops) = q.epoch_expectation(&v, dt);
        let mass: f64 = dist.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(dist.iter().all(|&p| p >= -1e-12));
        prop_assert!(drops >= -1e-12 && drops <= lambda * dt + 1e-9);
    }
}

//! Integration test of Theorem 1: the finite-system performance converges
//! to the mean-field performance as the system grows (N = M²).
//!
//! Mirrors the proof's conditioning on the arrival sequence: the same λ
//! path drives the deterministic mean-field rollout and every finite
//! Monte-Carlo run.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::theory::{conditioned_return, gaps_shrink, sample_lambda_sequence, ConvergenceRow};
use mflb::core::SystemConfig;
use mflb::policy::{jsq_rule, rnd_rule, softmin_rule};
use mflb::sim::{monte_carlo_conditioned, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn convergence_rows(
    base: &SystemConfig,
    policy: &FixedRulePolicy,
    ms: &[usize],
    horizon: usize,
    seed: u64,
) -> Vec<ConvergenceRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lambda_seq = sample_lambda_sequence(base, horizon, &mut rng);
    let mf = conditioned_return(base, policy, &lambda_seq);
    ms.iter()
        .map(|&m| {
            let cfg = base.clone().with_m_squared(m);
            let engine = AggregateEngine::new(cfg.clone());
            let mc = monte_carlo_conditioned(&engine, policy, &lambda_seq, 24, seed ^ 0xA5, 0);
            ConvergenceRow {
                num_clients: cfg.num_clients,
                num_queues: m,
                mean_field: mf,
                finite_mean: -mc.mean(),
                finite_ci95: mc.ci95(),
            }
        })
        .collect()
}

#[test]
fn finite_system_approaches_mean_field_under_jsq() {
    let base = SystemConfig::paper().with_dt(5.0);
    let policy = FixedRulePolicy::new(jsq_rule(6, 2), "JSQ(2)");
    let rows = convergence_rows(&base, &policy, &[20, 60, 180], 40, 1);
    // Large system must be consistent with the limit within CI + slack.
    let last = rows.last().unwrap();
    assert!(
        last.consistent_within(0.8),
        "M=180 gap {} exceeds ci {} + slack",
        last.gap(),
        last.finite_ci95
    );
    // Gaps shrink along the size ladder, modulo Monte-Carlo jitter.
    assert!(
        gaps_shrink(&rows, 0.6),
        "gaps did not shrink: {:?}",
        rows.iter().map(ConvergenceRow::gap).collect::<Vec<_>>()
    );
}

#[test]
fn finite_system_approaches_mean_field_under_rnd_and_softmin() {
    let base = SystemConfig::paper().with_dt(3.0);
    for (rule, name) in [(rnd_rule(6, 2), "RND"), (softmin_rule(6, 2, 1.5), "SOFT")] {
        let policy = FixedRulePolicy::new(rule, name);
        let rows = convergence_rows(&base, &policy, &[30, 150], 30, 2);
        let (small, large) = (&rows[0], &rows[1]);
        assert!(
            large.gap() <= small.gap() + 0.5,
            "{name}: gap grew from {} to {}",
            small.gap(),
            large.gap()
        );
        assert!(
            large.consistent_within(0.8),
            "{name}: M=150 inconsistent with limit (gap {})",
            large.gap()
        );
    }
}

#[test]
fn mean_field_value_is_deterministic_and_policy_ordering_holds() {
    // The paper's central qualitative claim at large delay: sharp JSQ is
    // far from optimal (herding on stale data), RND is near-optimal but
    // still beatable by a mildly state-sensitive rule. The softmin family
    // contains both extremes, so its best member on a FIXED arrival path
    // must weakly dominate both, and at Δt = 10 the interior optimum must
    // strictly beat JSQ by a wide margin.
    let base = SystemConfig::paper().with_dt(10.0);
    let mut rng = StdRng::seed_from_u64(3);
    let seq = sample_lambda_sequence(&base, 50, &mut rng);
    let value = |beta: f64| {
        conditioned_return(&base, &FixedRulePolicy::new(softmin_rule(6, 2, beta), "SOFT"), &seq)
    };
    let jsq = conditioned_return(&base, &FixedRulePolicy::new(jsq_rule(6, 2), "JSQ"), &seq);
    let rnd = conditioned_return(&base, &FixedRulePolicy::new(rnd_rule(6, 2), "RND"), &seq);
    let best = [0.0, 0.1, 0.2, 0.4, 0.8, 1.6, 64.0]
        .iter()
        .map(|&b| value(b))
        .fold(f64::NEG_INFINITY, f64::max);
    // Family limits reproduce the baselines exactly.
    assert!((value(0.0) - rnd).abs() < 1e-9, "β=0 must equal RND");
    assert!((value(200.0) - jsq).abs() < 1e-9, "β→∞ must equal JSQ");
    // Best member dominates both; at Δt=10 it beats JSQ decisively and
    // RND at least marginally.
    assert!(best >= rnd - 1e-9 && best >= jsq - 1e-9);
    assert!(best > jsq + 1.0, "at Δt=10 sharp JSQ must lose clearly: {best} vs {jsq}");
    assert!(best >= rnd, "optimized softmin cannot lose to RND: {best} vs {rnd}");
}

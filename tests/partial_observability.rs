//! Cross-crate integration tests for the partial-observability wrapper:
//! degraded information must cost value in the right direction and
//! recover the exact baseline in the rich-information limit, when
//! wrapped around a genuinely ν-sensitive policy (the DP optimum).

use mflb::core::partial::{ObservationModel, PartialObservationPolicy};
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::dp::{ActionLibrary, DpConfig, DpSolution, GridPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (SystemConfig, MeanFieldMdp, GridPolicy, Vec<Vec<usize>>) {
    let cfg = SystemConfig::paper().with_dt(5.0).with_buffer(3);
    let dp_cfg = DpConfig { grid_resolution: 8, tol: 1e-7, max_sweeps: 4000, threads: 0 };
    let sol =
        DpSolution::solve(&cfg, ActionLibrary::softmin_default(cfg.num_states(), cfg.d), &dp_cfg);
    let mdp = MeanFieldMdp::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(2);
    let seqs: Vec<Vec<usize>> =
        (0..10).map(|_| mflb::core::theory::sample_lambda_sequence(&cfg, 60, &mut rng)).collect();
    (cfg, mdp, sol.into_policy(), seqs)
}

fn value_under(
    mdp: &MeanFieldMdp,
    base: &GridPolicy,
    model: ObservationModel,
    seqs: &[Vec<usize>],
) -> f64 {
    let mut total = 0.0;
    for (run, seq) in seqs.iter().enumerate() {
        let wrapped = PartialObservationPolicy::new(base.clone(), model, 500 + run as u64);
        total += mdp.rollout_conditioned(&wrapped, seq).total_return;
    }
    total / seqs.len() as f64
}

#[test]
fn huge_sample_recovers_exact_performance() {
    let (_cfg, mdp, base, seqs) = setup();
    let exact = value_under(&mdp, &base, ObservationModel::Exact, &seqs);
    let rich = value_under(&mdp, &base, ObservationModel::SampledQueues { k: 20_000 }, &seqs);
    assert!(
        (exact - rich).abs() < 0.02 * exact.abs().max(1.0),
        "k = 20000 should be indistinguishable from exact: {exact} vs {rich}"
    );
}

#[test]
fn information_is_weakly_valuable_in_k() {
    let (_cfg, mdp, base, seqs) = setup();
    let v3 = value_under(&mdp, &base, ObservationModel::SampledQueues { k: 3 }, &seqs);
    let v300 = value_under(&mdp, &base, ObservationModel::SampledQueues { k: 300 }, &seqs);
    let exact = value_under(&mdp, &base, ObservationModel::Exact, &seqs);
    assert!(v300 >= v3 - 0.01 * v3.abs(), "more samples must not hurt: k=3 {v3} vs k=300 {v300}");
    assert!(exact >= v3 - 1e-9, "exact {exact} must be at least k=3 {v3}");
}

#[test]
fn extra_staleness_costs_value() {
    let (_cfg, mdp, base, seqs) = setup();
    let exact = value_under(&mdp, &base, ObservationModel::Exact, &seqs);
    let stale4 = value_under(&mdp, &base, ObservationModel::Stale { epochs: 4 }, &seqs);
    assert!(
        exact >= stale4,
        "4 extra epochs of information age must not help: {exact} vs {stale4}"
    );
}

#[test]
fn wrapped_policy_names_carry_the_model_label() {
    let (_cfg, _mdp, base, _seqs) = setup();
    let wrapped = PartialObservationPolicy::new(base, ObservationModel::SampledQueues { k: 30 }, 1);
    assert!(mflb::core::UpperPolicy::name(&wrapped).contains("sampled(k=30)"));
}

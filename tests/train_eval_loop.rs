//! Quarantined full-loop reproduction test: `Scenario → PPO → checkpoint →
//! finite-N eval` for four engine kinds (including the locality-constrained
//! ring graph), asserting the quality bar of the quick-scale pipeline —
//! the learned policy beats the (neighborhood-restricted) RND baseline.
//!
//! Run with `cargo test --release -- --ignored` (CI's long-tests job).

use mflb::rl::{evaluate_checkpoint, train_scenario, train_scenario_from, PpoConfig};
use mflb::sim::Scenario;

/// The CLI's quick-scale preset, shortened: enough training to clear RND.
fn quick_ppo() -> PpoConfig {
    PpoConfig {
        gamma: 0.9,
        gae_lambda: 0.9,
        lr: 1e-3,
        train_batch_size: 2000,
        minibatch_size: 250,
        num_epochs: 10,
        kl_target: 0.02,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        rollout_threads: 2,
        ..PpoConfig::paper()
    }
}

fn scenario_from_file(name: &str) -> Scenario {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Scenario::from_json(&text).unwrap()
}

#[test]
#[ignore = "two full training runs + faulted finite-N eval; quarantined for CI speed"]
fn fault_trained_policy_beats_fault_blind_on_the_crash_scenario() {
    // Train twice on the quick-scale crash scenario: once fault-aware
    // (the scenario as shipped — FaultyMfcEnv: a two-pool Up/Down crash
    // mean field, overload bursts, stale snapshots) and once fault-blind
    // (same scenario with the plan stripped — the pristine mean field).
    // Deployed in the *faulted* finite system, the fault-aware policy
    // must lose fewer jobs: training under the degradation it will meet
    // is worth real drops.
    let faulted = scenario_from_file("event_crashy.json");
    assert!(faulted.faults.is_some(), "crash scenario must carry a fault plan");
    let mut blind = faulted.clone();
    blind.faults = None;

    // Pretrain-then-adapt: both arms share one competently pretrained
    // policy (PPO alone converges too slowly inside the noisy faulted
    // env for a from-scratch comparison to measure anything but
    // convergence luck). The fault-aware arm then fine-tunes that
    // network *inside* FaultyMfcEnv — crashes push its optimum toward
    // sharper length-avoidance than the pristine one — while the
    // fault-blind arm keeps the pretrained checkpoint as is.
    let ppo = quick_ppo();
    let blind_ckpt =
        train_scenario(&blind, ppo.clone(), 300, 1, false).expect("fault-blind training");
    let aware_ckpt =
        train_scenario_from(&faulted, ppo, 250, 1, false, Some(&blind_ckpt.checkpoint.policy_net))
            .expect("fault-aware fine-tuning");

    let aware = evaluate_checkpoint(&aware_ckpt.checkpoint, &faulted, &[], 20, 1, 0)
        .expect("fault-aware eval")
        .mean_drops_of("MF (learned)")
        .unwrap();
    let blind = evaluate_checkpoint(&blind_ckpt.checkpoint, &faulted, &[], 20, 1, 0)
        .expect("fault-blind eval")
        .mean_drops_of("MF (learned)")
        .unwrap();
    println!("fault-trained {aware:.3} vs fault-blind {blind:.3} drops/queue");
    assert!(
        aware < blind,
        "fault-trained policy ({aware:.3} drops/queue) must beat fault-blind ({blind:.3}) \
         on the crash scenario"
    );
}

#[test]
#[ignore = "full train->eval loop over four engine kinds; quarantined for CI speed"]
fn learned_policy_beats_rnd_on_four_engine_kinds() {
    for (file, iters) in [
        ("aggregate.json", 40),
        ("hetero_two_speed.json", 40),
        ("ph_erlang2.json", 40),
        ("graph_ring.json", 40),
    ] {
        let scenario = scenario_from_file(file);
        let result =
            train_scenario(&scenario, quick_ppo(), iters, 1, false).expect("training failed");
        let report = evaluate_checkpoint(&result.checkpoint, &scenario, &[], 10, 1, 0)
            .expect("evaluation failed");
        let learned = report.mean_drops_of("MF (learned)").unwrap();
        let rnd = report.rows.iter().find(|r| r.policy == "RND").map(|r| r.mean_drops).unwrap();
        assert!(
            learned < rnd,
            "{file}: learned policy ({learned:.3} drops/queue) must beat RND ({rnd:.3})"
        );
    }
}

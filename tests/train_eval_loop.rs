//! Quarantined full-loop reproduction test: `Scenario → PPO → checkpoint →
//! finite-N eval` for four engine kinds (including the locality-constrained
//! ring graph), asserting the quality bar of the quick-scale pipeline —
//! the learned policy beats the (neighborhood-restricted) RND baseline.
//!
//! Run with `cargo test --release -- --ignored` (CI's long-tests job).

use mflb::rl::{evaluate_checkpoint, train_scenario, PpoConfig};
use mflb::sim::Scenario;

/// The CLI's quick-scale preset, shortened: enough training to clear RND.
fn quick_ppo() -> PpoConfig {
    PpoConfig {
        gamma: 0.9,
        gae_lambda: 0.9,
        lr: 1e-3,
        train_batch_size: 2000,
        minibatch_size: 250,
        num_epochs: 10,
        kl_target: 0.02,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        rollout_threads: 2,
        ..PpoConfig::paper()
    }
}

fn scenario_from_file(name: &str) -> Scenario {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Scenario::from_json(&text).unwrap()
}

#[test]
#[ignore = "full train->eval loop over four engine kinds; quarantined for CI speed"]
fn learned_policy_beats_rnd_on_four_engine_kinds() {
    for (file, iters) in [
        ("aggregate.json", 40),
        ("hetero_two_speed.json", 40),
        ("ph_erlang2.json", 40),
        ("graph_ring.json", 40),
    ] {
        let scenario = scenario_from_file(file);
        let result =
            train_scenario(&scenario, quick_ppo(), iters, 1, false).expect("training failed");
        let report = evaluate_checkpoint(&result.checkpoint, &scenario, &[], 10, 1, 0)
            .expect("evaluation failed");
        let learned = report.mean_drops_of("MF (learned)").unwrap();
        let rnd = report.rows.iter().find(|r| r.policy == "RND").map(|r| r.mean_drops).unwrap();
        assert!(
            learned < rnd,
            "{file}: learned policy ({learned:.3} drops/queue) must beat RND ({rnd:.3})"
        );
    }
}

//! Cross-crate integration test: the literal per-client engine and the
//! exact aggregated engine follow the same probability law (DESIGN.md §4),
//! across policies and delays.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::SystemConfig;
use mflb::linalg::stats::Summary;
use mflb::policy::{jsq_rule, rnd_rule, softmin_rule};
use mflb::sim::{monte_carlo, AggregateEngine, PerClientEngine};

fn compare(cfg: &SystemConfig, policy: &FixedRulePolicy, horizon: usize, runs: usize) {
    let agg = AggregateEngine::new(cfg.clone());
    let per = PerClientEngine::new(cfg.clone());
    let a = monte_carlo(&agg, policy, horizon, runs, 11, 0);
    let p = monte_carlo(&per, policy, horizon, runs, 22, 0);
    let sa = Summary::from_slice(&a.per_run);
    let sp = Summary::from_slice(&p.per_run);
    let tol = 4.5 * (sa.std_err() + sp.std_err()) + 0.05;
    assert!(
        (sa.mean() - sp.mean()).abs() < tol,
        "engines disagree for {:?} dt={}: {} vs {} (tol {tol})",
        cfg.num_queues,
        cfg.dt,
        sa.mean(),
        sp.mean()
    );
}

#[test]
fn engines_agree_under_jsq_small_delay() {
    let cfg = SystemConfig::paper().with_size(600, 24).with_dt(1.0);
    compare(&cfg, &FixedRulePolicy::new(jsq_rule(6, 2), "JSQ"), 25, 40);
}

#[test]
fn engines_agree_under_rnd_large_delay() {
    let cfg = SystemConfig::paper().with_size(900, 30).with_dt(8.0);
    compare(&cfg, &FixedRulePolicy::new(rnd_rule(6, 2), "RND"), 8, 40);
}

#[test]
fn engines_agree_under_softmin_with_n_not_much_larger_than_m() {
    // The aggregation stays exact even when N ⋡ M (Fig. 6 regime).
    let cfg = SystemConfig::paper().with_size(50, 25).with_dt(4.0);
    compare(&cfg, &FixedRulePolicy::new(softmin_rule(6, 2, 2.0), "SOFT"), 15, 48);
}

#[test]
fn aggregate_engine_handles_degenerate_sizes() {
    // Single queue: every client lands on it; both engines must agree
    // exactly in distribution (here: smoke + drops bound check).
    let cfg = SystemConfig::paper().with_size(10, 1).with_dt(2.0);
    let policy = FixedRulePolicy::new(rnd_rule(6, 2), "RND");
    let agg = AggregateEngine::new(cfg.clone());
    let mc = monte_carlo(&agg, &policy, 10, 10, 5, 0);
    // One queue receives ALL load: λ·M = 0.9 max per queue; drops bounded
    // by arrivals ≈ λ·Δt per epoch.
    assert!(mc.mean() <= 0.9 * 2.0 * 10.0);
}

//! Cross-crate integration tests for the REINFORCE and CEM baselines on
//! the real MFC-MDP environment (not just the toy control task): with a
//! tiny budget both must make measurable progress from the near-uniform
//! initialization, and their deployed deterministic policies must be
//! valid upper-level policies.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{rnd_rule, NeuralUpperPolicy};
use mflb::rl::{CemConfig, CemTrainer, MfcEnv, ReinforceConfig, ReinforceTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_env() -> (SystemConfig, MfcEnv) {
    let cfg = SystemConfig::paper().with_dt(5.0);
    let env = MfcEnv::with_horizon(cfg.clone(), 25);
    (cfg, env)
}

fn eval_policy(cfg: &SystemConfig, policy: &dyn mflb::core::UpperPolicy, seed: u64) -> f64 {
    let mdp = MeanFieldMdp::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    mdp.evaluate(policy, 25, 12, &mut rng).mean()
}

#[test]
// Long-running reproduction test (~30-80 s in debug): run with
// `cargo test -- --ignored`.
#[ignore = "full REINFORCE training run; quarantined for CI speed"]
fn reinforce_learns_on_the_mfc_mdp() {
    let (cfg, env) = small_env();
    let rf_cfg = ReinforceConfig {
        gamma: 0.9,
        lr: 2e-3,
        value_lr: 2e-3,
        episodes_per_iter: 12,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        ..ReinforceConfig::default()
    };
    let mut trainer = ReinforceTrainer::new(&env, rf_cfg, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut returns = Vec::new();
    // REINFORCE takes ONE gradient step per iteration, so the iteration
    // count (not the env-step count) is the budget that matters.
    for _ in 0..220 {
        returns.push(trainer.train_iteration(&mut rng).mean_episode_return);
    }
    let early: f64 = returns[..10].iter().sum::<f64>() / 10.0;
    let late: f64 = returns[returns.len() - 10..].iter().sum::<f64>() / 10.0;
    assert!(
        late > early + 0.5,
        "REINFORCE made no progress on the MFC MDP: early {early:.2}, late {late:.2}"
    );

    // The deployed deterministic policy is a working UpperPolicy that
    // clearly beats MF-RND.
    let policy = NeuralUpperPolicy::new(
        trainer.policy_net().clone(),
        cfg.num_states(),
        cfg.d,
        cfg.arrivals.num_levels(),
    );
    let v_learned = eval_policy(&cfg, &policy, 7);
    let rnd = FixedRulePolicy::new(rnd_rule(cfg.num_states(), cfg.d), "MF-RND");
    let v_rnd = eval_policy(&cfg, &rnd, 7);
    assert!(v_learned > v_rnd + 0.3, "learned {v_learned:.2} should beat MF-RND {v_rnd:.2}");
}

#[test]
fn cem_learns_on_the_mfc_mdp() {
    let (cfg, env) = small_env();
    let cem_cfg = CemConfig {
        population: 20,
        episodes_per_eval: 1,
        hidden: vec![16, 16],
        threads: 0,
        ..CemConfig::default()
    };
    let mut trainer = CemTrainer::new(&env, cem_cfg, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut mean_returns = Vec::new();
    for _ in 0..12 {
        mean_returns.push(trainer.train_iteration(&mut rng).mean_candidate_return);
    }
    let first = mean_returns[0];
    let best_late = mean_returns[6..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_late > first + 0.5,
        "CEM made no progress on the MFC MDP: first {first:.2}, best late {best_late:.2}"
    );

    let policy = NeuralUpperPolicy::new(
        trainer.policy_net(),
        cfg.num_states(),
        cfg.d,
        cfg.arrivals.num_levels(),
    );
    let v_learned = eval_policy(&cfg, &policy, 9);
    let rnd = FixedRulePolicy::new(rnd_rule(cfg.num_states(), cfg.d), "MF-RND");
    let v_rnd = eval_policy(&cfg, &rnd, 9);
    assert!(v_learned > v_rnd + 0.3, "learned {v_learned:.2} should beat MF-RND {v_rnd:.2}");
}

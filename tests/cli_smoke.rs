//! CLI contract smoke tests: usage synopsis, exit codes and the train →
//! eval plumbing surface.
//!
//! `CARGO_BIN_EXE_mflb` points at the freshly built binary, so these tests
//! exercise exactly what an operator runs.

use std::process::Command;

fn mflb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mflb"))
}

#[test]
fn no_subcommand_prints_usage_and_exits_2() {
    let out = mflb().output().expect("run mflb");
    assert_eq!(out.status.code(), Some(2), "no subcommand must be a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for cmd in ["train", "eval", "distill", "simulate", "meanfield", "compare", "dp-solve", "bench"]
    {
        assert!(stderr.contains(cmd), "usage synopsis must list `{cmd}`:\n{stderr}");
    }
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = mflb().arg("frobnicate").output().expect("run mflb");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage: mflb"), "{stderr}");
}

#[test]
fn help_prints_synopsis_on_stdout_and_exits_0() {
    let out = mflb().arg("help").output().expect("run mflb");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: mflb"), "{stdout}");
    assert!(stdout.contains("train"), "{stdout}");
}

#[test]
fn eval_without_checkpoint_fails_cleanly() {
    let out = mflb().arg("eval").output().expect("run mflb");
    assert_eq!(out.status.code(), Some(1), "runtime error, not a panic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--checkpoint"), "{stderr}");
}

#[test]
fn train_rejects_unknown_scale_with_exit_2() {
    let out = mflb().args(["train", "--scale", "warpspeed"]).output().expect("run mflb");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warpspeed"), "{stderr}");
}

#[test]
fn train_rejects_malformed_scenario_file() {
    let dir = std::env::temp_dir().join("mflb_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad_scenario.json");
    std::fs::write(&bad, "{\"engine\": \"Quantum\"}").unwrap();
    let out =
        mflb().args(["train", "--scenario", bad.to_str().unwrap()]).output().expect("run mflb");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&bad).ok();
}

/// The shipped example specs parse, validate and survive a JSON
/// round-trip — keeping the walkthrough files in lock-step with the code.
#[test]
fn shipped_scenario_specs_are_valid() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario = mflb::sim::Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario.build().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        seen += 1;
    }
    assert!(seen >= 7, "expected at least one spec per engine kind, found {seen}");
}

/// `mflb validate` — the CI scenario-corpus gate: exit 0 over the shipped
/// corpus, exit 1 as soon as any file is invalid, exit 2 without files.
#[test]
fn validate_subcommand_gates_the_scenario_corpus() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("json"))
                .then(|| p.to_str().unwrap().to_string())
        })
        .collect();
    files.sort();
    let out = mflb().arg("validate").args(&files).output().expect("run mflb validate");
    assert!(
        out.status.success(),
        "shipped corpus must validate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("graph_ring.json"), "{stdout}");
    assert!(stdout.contains("engine=graph"), "{stdout}");

    // One rotten file turns the whole run into exit 1, naming the culprit.
    let tmp = std::env::temp_dir().join("mflb_validate_smoke");
    std::fs::create_dir_all(&tmp).unwrap();
    let bad = tmp.join("rotten.json");
    std::fs::write(&bad, "{\"engine\": \"Aggregate\"}").unwrap(); // missing config
    let mut with_bad = files.clone();
    with_bad.push(bad.to_str().unwrap().to_string());
    let out = mflb().arg("validate").args(&with_bad).output().expect("run mflb validate");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rotten.json"), "{stderr}");
    std::fs::remove_file(&bad).ok();

    // No files at all is a usage error.
    let out = mflb().arg("validate").output().expect("run mflb validate");
    assert_eq!(out.status.code(), Some(2));
}

/// `mflb bench-diff` — the CI perf gate: self-comparison of the committed
/// quick-scale baseline (the gate's actual reference) passes, a doctored
/// regression fails with exit 1.
#[test]
fn bench_diff_subcommand_gates_on_speedup_ratios() {
    let baseline =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_kernels_quick.json");
    let baseline = baseline.to_str().unwrap();
    let out = mflb()
        .args(["bench-diff", "--baseline", baseline, "--fresh", baseline])
        .output()
        .expect("run mflb bench-diff");
    assert!(
        out.status.success(),
        "self-comparison must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| kernel |"), "markdown table expected: {stdout}");

    // Halve every speedup in a doctored fresh report: every tracked kernel
    // regresses by 2x > 1.3x.
    let text = std::fs::read_to_string(baseline).unwrap();
    let doctored = regex_free_halve_speedups(&text);
    let tmp = std::env::temp_dir().join("mflb_bench_diff_smoke");
    std::fs::create_dir_all(&tmp).unwrap();
    let fresh = tmp.join("fresh.json");
    std::fs::write(&fresh, doctored).unwrap();
    let out = mflb()
        .args(["bench-diff", "--baseline", baseline, "--fresh", fresh.to_str().unwrap()])
        .output()
        .expect("run mflb bench-diff");
    assert_eq!(out.status.code(), Some(1), "halved speedups must fail the 1.3x gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("same-machine margin"), "{stderr}");
    std::fs::remove_file(&fresh).ok();
}

/// Rewrites a perf report JSON so every non-null `"speedup"` is halved
/// (structured edit via the JSON value tree, no string surgery).
fn regex_free_halve_speedups(text: &str) -> String {
    use serde_json::Value;
    let mut v = Value::parse(text).unwrap();
    let Value::Obj(fields) = &mut v else { panic!("report must be an object") };
    let entries = fields
        .iter_mut()
        .find_map(|(k, v)| (k == "entries").then_some(v))
        .expect("report must carry entries");
    let Value::Arr(entries) = entries else { panic!("entries must be an array") };
    for e in entries {
        let Value::Obj(ef) = e else { continue };
        for (k, val) in ef.iter_mut() {
            if k == "speedup" {
                match val {
                    Value::Float(s) => *s /= 2.0,
                    Value::Int(i) => *val = Value::Float(*i as f64 / 2.0),
                    _ => {}
                }
            }
        }
    }
    v.to_json()
}

/// End-to-end `mflb train` → `mflb eval` at a deliberately tiny scale:
/// the full loop must complete and produce the JSON artifacts. (The
/// quick-scale quality bar — learned beats RND — is covered by the
/// quarantined test in `tests/train_eval_loop.rs`.)
#[test]
fn train_then_eval_loop_completes_at_tiny_scale() {
    let dir = std::env::temp_dir().join("mflb_cli_loop");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("tiny.json");
    let report = dir.join("tiny_eval.json");

    let out = mflb()
        .args([
            "train",
            "--engine",
            "aggregate",
            "--m",
            "20",
            "--iters",
            "1",
            "--seed",
            "1",
            "--out",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.exists(), "checkpoint must be written");
    assert!(dir.join("tiny.curve.json").exists(), "curve JSON must be written");

    let out = mflb()
        .args([
            "eval",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--runs",
            "2",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb eval");
    assert!(out.status.success(), "eval failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MF (learned)"), "{stdout}");
    assert!(stdout.contains("RND"), "{stdout}");
    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.contains("\"rows\""), "JSON table must be written");
    std::fs::remove_dir_all(&dir).ok();
}

/// Trains a throwaway tiny checkpoint (M = 20, one iteration) under `dir`
/// and returns its path.
fn train_tiny_checkpoint(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let ckpt = dir.join("tiny.json");
    let out = mflb()
        .args([
            "train",
            "--engine",
            "aggregate",
            "--m",
            "20",
            "--iters",
            "1",
            "--seed",
            "1",
            "--out",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    ckpt
}

/// `mflb eval --oracle` — the optimality-certificate surface: the table
/// gains a gap column and an `MF-DP (oracle)` row whose own gap is
/// exactly 0, and the JSON report carries the oracle provenance block.
#[test]
fn eval_with_oracle_reports_gap_column_and_pins_oracle_gap_to_zero() {
    let dir = std::env::temp_dir().join("mflb_cli_oracle_eval");
    let ckpt = train_tiny_checkpoint(&dir);
    let report = dir.join("oracle_eval.json");
    let out = mflb()
        .args([
            "eval",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--oracle",
            "--oracle-grid",
            "3",
            "--oracle-cache",
            "none",
            "--runs",
            "2",
            "--seed",
            "1",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb eval --oracle");
    assert!(out.status.success(), "oracle eval failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gap %"), "gap column expected:\n{stdout}");
    assert!(stdout.contains("MF-DP (oracle)"), "oracle row expected:\n{stdout}");
    assert!(stdout.contains("exact certificate"), "provenance line expected:\n{stdout}");

    let parsed: mflb::rl::EvalReport =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap())
            .expect("report JSON must deserialize");
    let oracle = parsed.oracle.as_ref().expect("report must carry the oracle summary");
    assert!(oracle.exact, "the aggregate engine is an exact-oracle scenario");
    assert_eq!(oracle.grid_resolution, 3);
    assert_eq!(
        parsed.gap_pct_of("MF-DP (oracle)"),
        Some(0.0),
        "the oracle's own gap must be exactly zero"
    );
    for row in &parsed.rows {
        assert!(row.gap_pct.is_some(), "every row gains a gap: {}", row.policy);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Infeasible or unsupported oracle requests are usage errors (exit 2)
/// with a message that names the fix, caught before any solving starts.
#[test]
fn eval_oracle_rejects_oversized_grids_and_hetero_scenarios_with_exit_2() {
    let dir = std::env::temp_dir().join("mflb_cli_oracle_reject");
    let ckpt = train_tiny_checkpoint(&dir);
    let out = mflb()
        .args([
            "eval",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--oracle",
            "--oracle-grid",
            "100000",
        ])
        .output()
        .expect("run mflb eval --oracle");
    assert_eq!(out.status.code(), Some(2), "oversized lattice must be a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--oracle-grid"), "must tell the user the fix: {stderr}");

    let hetero = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios/hetero_two_speed.json");
    let out = mflb()
        .args([
            "eval",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--scenario",
            hetero.to_str().unwrap(),
            "--oracle",
        ])
        .output()
        .expect("run mflb eval --oracle");
    assert_eq!(out.status.code(), Some(2), "hetero pools have no DP oracle");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("heterogeneous"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--max-gap` — the regression gate: a generous cap passes (exit 0), an
/// impossible one fails with exit 1 and a readable breach message.
#[test]
fn eval_max_gap_gate_passes_and_breaches_by_exit_code() {
    let dir = std::env::temp_dir().join("mflb_cli_oracle_gate");
    let ckpt = train_tiny_checkpoint(&dir);
    let args = |cap: &str, out: &str| {
        vec![
            "eval".to_string(),
            "--checkpoint".into(),
            ckpt.to_str().unwrap().into(),
            "--oracle-grid".into(),
            "3".into(),
            "--oracle-cache".into(),
            "none".into(),
            "--runs".into(),
            "2".into(),
            "--seed".into(),
            "1".into(),
            "--max-gap".into(),
            cap.into(),
            "--out".into(),
            dir.join(out).to_str().unwrap().into(),
        ]
    };
    // --max-gap implies --oracle; a huge cap always passes.
    let out = mflb().args(args("100000", "pass.json")).output().expect("run mflb eval");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("[gate]"));
    // Gaps are bounded below by −100%, so a cap of −200 must breach.
    let out = mflb().args(args("-200", "breach.json")).output().expect("run mflb eval");
    assert_eq!(out.status.code(), Some(1), "breach must be exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--max-gap"), "breach message must name the gate: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `mflb serve` — the trace-replay surface: the shipped ten-job fixture
/// runs end-to-end through a trained checkpoint, the periodic tick lines
/// and the final report line all parse as their serde types, and the
/// counters balance.
#[test]
fn serve_replays_the_ten_job_trace_fixture_with_a_checkpoint() {
    let dir = std::env::temp_dir().join("mflb_cli_serve_trace");
    let ckpt = train_tiny_checkpoint(&dir);
    let trace =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/traces/ten_jobs.jsonl");
    let report_path = dir.join("serve_report.json");
    let out = mflb()
        .args([
            "serve",
            "--policy",
            "checkpoint",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--report-every",
            "1",
            "--seed",
            "1",
            "--out",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb serve");
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(lines.len() >= 2, "expected tick lines plus a final report line:\n{stdout}");
    for tick_line in &lines[..lines.len() - 1] {
        let tick: mflb::sim::ServeTick =
            serde_json::from_str(tick_line).unwrap_or_else(|e| panic!("tick `{tick_line}`: {e}"));
        assert!(tick.jobs_arrived >= tick.jobs_dropped, "counters must be consistent");
    }
    let report = mflb::sim::ServeReport::from_json(lines.last().unwrap())
        .expect("last stdout line must be the final report JSON");
    assert_eq!(report.source, "trace");
    assert_eq!(report.jobs_arrived, 10, "the fixture carries exactly ten jobs");
    assert_eq!(report.jobs_in_system, 0, "trace runs drain to completion");
    assert_eq!(report.jobs_completed + report.jobs_dropped, 10);
    // The --out artifact carries the same report.
    let on_disk =
        mflb::sim::ServeReport::from_json(&std::fs::read_to_string(&report_path).unwrap())
            .expect("--out report must parse");
    assert_eq!(on_disk.jobs_arrived, report.jobs_arrived);
    assert_eq!(on_disk.mean_sojourn.to_bits(), report.mean_sojourn.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

/// `mflb serve` on a synthetic stream: `--duration` bounds the run for a
/// learned checkpoint, and `--max-jobs` caps admissions then drains.
#[test]
fn serve_synthetic_stream_honors_duration_and_max_jobs() {
    let dir = std::env::temp_dir().join("mflb_cli_serve_synth");
    let ckpt = train_tiny_checkpoint(&dir);
    let out = mflb()
        .args([
            "serve",
            "--policy",
            "checkpoint",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--duration",
            "20",
            "--seed",
            "2",
        ])
        .output()
        .expect("run mflb serve");
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report = mflb::sim::ServeReport::from_json(stdout.lines().last().unwrap())
        .expect("final report JSON");
    assert_eq!(report.source, "synthetic");
    assert!(report.sim_time >= 20.0 - 1e-9, "duration must be covered: {}", report.sim_time);
    assert!(report.jobs_arrived > 0, "a synthetic stream must dispatch jobs");

    let out = mflb()
        .args(["serve", "--m", "10", "--max-jobs", "25", "--duration", "1000000", "--seed", "3"])
        .output()
        .expect("run mflb serve");
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report = mflb::sim::ServeReport::from_json(stdout.lines().last().unwrap())
        .expect("final report JSON");
    assert_eq!(report.jobs_arrived, 25, "--max-jobs caps admissions");
    assert_eq!(report.jobs_in_system, 0, "capped runs drain before exiting");
    std::fs::remove_dir_all(&dir).ok();
}

/// `mflb serve` pre-flight: every malformed request is a usage error
/// (exit 2) raised before the trace is read.
#[test]
fn serve_usage_errors_exit_2_before_touching_the_trace() {
    let dir = std::env::temp_dir().join("mflb_cli_serve_usage");
    std::fs::create_dir_all(&dir).unwrap();

    // Unknown policy tier, listing the valid ones.
    let out = mflb().args(["serve", "--policy", "warpdrive"]).output().expect("run mflb serve");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("jsq|rnd|softmin|checkpoint|distilled"), "{stderr}");

    // A checkpoint tier without --checkpoint, and with an unloadable path.
    let out = mflb().args(["serve", "--policy", "distilled"]).output().expect("run mflb serve");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint"));

    // The missing checkpoint is reported even when the trace is also
    // malformed — checkpoints are validated first, the trace last.
    let bad_trace = dir.join("bad.jsonl");
    std::fs::write(&bad_trace, "{\"t\": 0.0, \"size\": 1.0}\nnot json at all\n").unwrap();
    let out = mflb()
        .args([
            "serve",
            "--policy",
            "checkpoint",
            "--checkpoint",
            dir.join("missing.json").to_str().unwrap(),
            "--trace",
            bad_trace.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb serve");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing.json"), "checkpoint complaint must come first: {stderr}");
    assert!(!stderr.contains("line 2"), "the trace must not have been parsed yet: {stderr}");

    // A malformed trace line is named with its 1-based number.
    let out = mflb()
        .args(["serve", "--trace", bad_trace.to_str().unwrap()])
        .output()
        .expect("run mflb serve");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "malformed line must be named: {stderr}");

    // Bad numeric flags die before any work.
    for args in [["serve", "--duration", "-3"], ["serve", "--max-jobs", "many"]] {
        let out = mflb().args(args).output().expect("run mflb serve");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `mflb distill` → `--policy distilled` — the distillation surface: the
/// artifact is written, reloads, and deploys through `mflb simulate`.
#[test]
fn distill_then_deploy_loop_completes_at_tiny_scale() {
    let dir = std::env::temp_dir().join("mflb_cli_distill");
    let ckpt = train_tiny_checkpoint(&dir);
    let table = dir.join("distilled.json");
    let out = mflb()
        .args([
            "distill",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--grid",
            "3",
            "--oracle-cache",
            "none",
            "--runs",
            "0",
            "--out",
            table.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb distill");
    assert!(out.status.success(), "distill failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("network-matched"), "{stdout}");
    let loaded = mflb::rl::DistilledCheckpoint::load(&table).expect("artifact must reload");
    assert_eq!(loaded.grid_resolution, 3);

    let out = mflb()
        .args([
            "simulate",
            "--engine",
            "aggregate",
            "--m",
            "20",
            "--policy",
            "distilled",
            "--checkpoint",
            table.to_str().unwrap(),
            "--runs",
            "2",
        ])
        .output()
        .expect("run mflb simulate");
    assert!(out.status.success(), "deploy failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("MF-DP (distilled)"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed fault plans and inconsistent degradation flags are usage
/// errors (exit 2) raised before any simulation work.
#[test]
fn fault_plan_usage_errors_exit_2() {
    let dir = std::env::temp_dir().join("mflb_cli_faults_usage");
    std::fs::create_dir_all(&dir).unwrap();
    let crashy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios/event_crashy.json");

    // Unparseable plan JSON.
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "{\"crashes\": {").unwrap();
    let out = mflb()
        .args(["simulate", "--engine", "event", "--faults", garbled.to_str().unwrap()])
        .output()
        .expect("run mflb simulate");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fault plan"));

    // A parseable plan with a nonsense parameter (mttf <= 0).
    let negative = dir.join("negative.json");
    std::fs::write(&negative, "{\"crashes\": {\"mttf\": -3.0, \"mttr\": 1.0}}").unwrap();
    let out = mflb()
        .args(["simulate", "--engine", "event", "--faults", negative.to_str().unwrap()])
        .output()
        .expect("run mflb simulate");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mttf"));

    // A straggler window naming a queue the system does not have.
    let oob = dir.join("oob.json");
    std::fs::write(
        &oob,
        "{\"stragglers\": [{\"start\": 0.0, \"end\": 5.0, \"factor\": 0.5, \"queues\": [999]}]}",
    )
    .unwrap();
    for cmd in ["simulate", "serve"] {
        let out = mflb()
            .args([cmd, "--engine", "event", "--m", "20", "--faults", oob.to_str().unwrap()])
            .output()
            .expect("run mflb");
        assert_eq!(out.status.code(), Some(2), "{cmd} must reject the out-of-range queue");
        assert!(String::from_utf8_lossy(&out.stderr).contains("999"));
    }

    // Engines that do not honor fault plans reject them up front.
    let valid = dir.join("valid.json");
    std::fs::write(&valid, "{\"crashes\": {\"mttf\": 20.0, \"mttr\": 5.0}}").unwrap();
    let out = mflb()
        .args(["simulate", "--engine", "aggregate", "--faults", valid.to_str().unwrap()])
        .output()
        .expect("run mflb simulate");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not honor"));

    // Degradation flags come in consistent pairs, with positive values.
    let scenario = crashy.to_str().unwrap();
    for args in [
        vec!["serve", "--scenario", scenario, "--staleness-threshold", "2"],
        vec!["serve", "--scenario", scenario, "--fallback", "jsq"],
        vec!["serve", "--scenario", scenario, "--admission-cap", "0"],
        vec![
            "serve",
            "--scenario",
            scenario,
            "--fallback",
            "teleport",
            "--staleness-threshold",
            "2",
        ],
    ] {
        let out = mflb().args(&args).output().expect("run mflb serve");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The robustness acceptance gate: on the shipped crash scenario, the
/// protected serve loop (bounded admission + staleness fallback) must
/// lose a strictly smaller fraction of jobs than the unprotected one,
/// while actually exercising shedding and the watchdog.
#[test]
fn serve_graceful_degradation_beats_the_unprotected_loop() {
    let crashy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios/event_crashy.json");
    let base = [
        "serve",
        "--scenario",
        crashy.to_str().unwrap(),
        "--duration",
        "100",
        "--seed",
        "7",
        "--report-every",
        "1000",
    ];
    let run = |extra: &[&str]| {
        let out = mflb().args(base).args(extra).output().expect("run mflb serve");
        assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        mflb::sim::ServeReport::from_json(stdout.lines().last().unwrap())
            .expect("final report JSON")
    };

    let unprotected = run(&[]);
    let protected =
        run(&["--admission-cap", "85", "--staleness-threshold", "2", "--fallback", "jsq"]);

    assert!(unprotected.drop_fraction > 0.0, "the crash plan must actually cost jobs");
    assert_eq!(unprotected.jobs_shed, 0, "no admission cap, no shedding");
    assert!(protected.jobs_shed > 0, "the cap must engage under crash backlog");
    assert!(protected.fallback_activations > 0, "stale snapshots must trip the watchdog");
    assert!(protected.observation_dropped > 0, "the observation fault must fire");
    assert!(
        protected.drop_fraction < unprotected.drop_fraction,
        "graceful degradation must beat the unprotected loop: protected {} vs unprotected {}",
        protected.drop_fraction,
        unprotected.drop_fraction
    );
    assert!(
        protected.loss_fraction < unprotected.loss_fraction,
        "even counting shed jobs as losses: protected {} vs unprotected {}",
        protected.loss_fraction,
        unprotected.loss_fraction
    );
}

/// `simulate --record-trace` → `serve --trace` round trip: the recorded
/// synthetic stream replays with identical job counts, and replaying the
/// same file twice is bit-identical on every reported statistic.
#[test]
fn recorded_traces_replay_bit_identically_through_the_cli() {
    let dir = std::env::temp_dir().join("mflb_cli_record_replay");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("recorded.jsonl");
    let sys = ["--engine", "event", "--m", "20", "--n", "400", "--dt", "2"];

    let out = mflb()
        .args(["simulate"])
        .args(sys)
        .args(["--duration", "20", "--seed", "5", "--record-trace", trace.to_str().unwrap()])
        .output()
        .expect("run mflb simulate");
    assert!(out.status.success(), "record failed: {}", String::from_utf8_lossy(&out.stderr));
    let recorded = std::fs::read_to_string(&trace).unwrap().lines().count() as u64;
    assert!(recorded > 0, "a busy synthetic run must record jobs");

    let replay = || {
        let out = mflb()
            .args(["serve"])
            .args(sys)
            .args([
                "--trace",
                trace.to_str().unwrap(),
                "--seed",
                "5",
                "--duration",
                "20",
                "--report-every",
                "1000",
            ])
            .output()
            .expect("run mflb serve");
        assert!(out.status.success(), "replay failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        mflb::sim::ServeReport::from_json(stdout.lines().last().unwrap())
            .expect("final report JSON")
    };
    let a = replay();
    let b = replay();
    assert_eq!(a.jobs_arrived, recorded, "every recorded job must be replayed");
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.mean_sojourn.to_bits(), b.mean_sojourn.to_bits());
    assert_eq!(a.drop_fraction.to_bits(), b.drop_fraction.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

//! CLI contract smoke tests: usage synopsis, exit codes and the train →
//! eval plumbing surface.
//!
//! `CARGO_BIN_EXE_mflb` points at the freshly built binary, so these tests
//! exercise exactly what an operator runs.

use std::process::Command;

fn mflb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mflb"))
}

#[test]
fn no_subcommand_prints_usage_and_exits_2() {
    let out = mflb().output().expect("run mflb");
    assert_eq!(out.status.code(), Some(2), "no subcommand must be a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for cmd in ["train", "eval", "simulate", "meanfield", "compare", "dp-solve", "bench"] {
        assert!(stderr.contains(cmd), "usage synopsis must list `{cmd}`:\n{stderr}");
    }
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = mflb().arg("frobnicate").output().expect("run mflb");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage: mflb"), "{stderr}");
}

#[test]
fn help_prints_synopsis_on_stdout_and_exits_0() {
    let out = mflb().arg("help").output().expect("run mflb");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: mflb"), "{stdout}");
    assert!(stdout.contains("train"), "{stdout}");
}

#[test]
fn eval_without_checkpoint_fails_cleanly() {
    let out = mflb().arg("eval").output().expect("run mflb");
    assert_eq!(out.status.code(), Some(1), "runtime error, not a panic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--checkpoint"), "{stderr}");
}

#[test]
fn train_rejects_unknown_scale_with_exit_2() {
    let out = mflb().args(["train", "--scale", "warpspeed"]).output().expect("run mflb");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warpspeed"), "{stderr}");
}

#[test]
fn train_rejects_malformed_scenario_file() {
    let dir = std::env::temp_dir().join("mflb_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad_scenario.json");
    std::fs::write(&bad, "{\"engine\": \"Quantum\"}").unwrap();
    let out =
        mflb().args(["train", "--scenario", bad.to_str().unwrap()]).output().expect("run mflb");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&bad).ok();
}

/// The shipped example specs parse, validate and survive a JSON
/// round-trip — keeping the walkthrough files in lock-step with the code.
#[test]
fn shipped_scenario_specs_are_valid() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario = mflb::sim::Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario.build().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        seen += 1;
    }
    assert!(seen >= 6, "expected at least one spec per engine kind, found {seen}");
}

/// End-to-end `mflb train` → `mflb eval` at a deliberately tiny scale:
/// the full loop must complete and produce the JSON artifacts. (The
/// quick-scale quality bar — learned beats RND — is covered by the
/// quarantined test in `tests/train_eval_loop.rs`.)
#[test]
fn train_then_eval_loop_completes_at_tiny_scale() {
    let dir = std::env::temp_dir().join("mflb_cli_loop");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("tiny.json");
    let report = dir.join("tiny_eval.json");

    let out = mflb()
        .args([
            "train",
            "--engine",
            "aggregate",
            "--m",
            "20",
            "--iters",
            "1",
            "--seed",
            "1",
            "--out",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.exists(), "checkpoint must be written");
    assert!(dir.join("tiny.curve.json").exists(), "curve JSON must be written");

    let out = mflb()
        .args([
            "eval",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--runs",
            "2",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run mflb eval");
    assert!(out.status.success(), "eval failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MF (learned)"), "{stdout}");
    assert!(stdout.contains("RND"), "{stdout}");
    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.contains("\"rows\""), "JSON table must be written");
    std::fs::remove_dir_all(&dir).ok();
}

//! Quarantined optimality-certification gate: quick-scale PPO training
//! must land within a pinned optimality gap of the exact DP oracle — a
//! much stronger quality bar than "beats RND" — on both the homogeneous
//! paper dynamics and the phase-type family, the oracle itself must pass
//! its Bellman-residual self-check, and distillation must stay within 5%
//! of the network it was projected from.
//!
//! Run with `cargo test --release -- --ignored` (CI's long-tests job).

use mflb::rl::{
    distill_checkpoint, evaluate_checkpoint_with_oracle, solve_oracle, train_scenario,
    DistillConfig, OracleConfig, PpoConfig,
};
use mflb::sim::{monte_carlo, EngineSpec, Scenario, ServiceLaw};

/// The CLI's quick-scale preset, shortened: enough training to approach
/// the oracle, minutes not hours.
fn quick_ppo() -> PpoConfig {
    PpoConfig {
        gamma: 0.9,
        gae_lambda: 0.9,
        lr: 1e-3,
        train_batch_size: 2000,
        minibatch_size: 250,
        num_epochs: 10,
        kl_target: 0.02,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        rollout_threads: 2,
        ..PpoConfig::paper()
    }
}

fn scenario_from_file(name: &str) -> Scenario {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Scenario::from_json(&text).unwrap()
}

fn quick_oracle(grid: usize) -> OracleConfig {
    OracleConfig { grid_resolution: grid, cache_dir: None, ..OracleConfig::default() }
}

/// Trains quick-scale, evaluates with the oracle and returns the learned
/// policy's optimality gap in percent.
fn learned_gap_pct(scenario: &Scenario, iters: usize) -> f64 {
    let result = train_scenario(scenario, quick_ppo(), iters, 1, false).expect("training failed");
    let report = evaluate_checkpoint_with_oracle(
        &result.checkpoint,
        scenario,
        &[],
        16,
        1,
        0,
        Some(&quick_oracle(6)),
    )
    .expect("evaluation failed");
    let gap = report.gap_pct_of("MF (learned)").expect("oracle evals must report a learned gap");
    println!("learned gap on {:?}: {gap:+.2}%", scenario.engine);
    gap
}

#[test]
#[ignore = "full lattice DP solve + Bellman sweep; quarantined for CI speed"]
fn oracle_passes_its_bellman_residual_self_check() {
    let scenario = scenario_from_file("oracle_tiny.json");
    let oracle = solve_oracle(&scenario, &quick_oracle(6)).expect("oracle solve failed");
    assert!(oracle.exactness.is_exact(), "the aggregate engine is an exact-oracle scenario");
    // The model-recomputed residual over the full lattice must agree with
    // the solver's convergence claim — a cached-or-fresh solution that
    // has not actually converged fails loudly here.
    let worst = oracle.max_bellman_residual(1);
    assert!(worst < 1e-5, "max Bellman residual {worst} betrays a non-converged solution");
}

#[test]
#[ignore = "full train->certify loop on the homogeneous family; quarantined for CI speed"]
fn quick_scale_training_stays_within_the_pinned_gap_homogeneous() {
    let scenario = scenario_from_file("oracle_tiny.json");
    let gap = learned_gap_pct(&scenario, 60);
    // Pinned from seed-1 quick-scale runs (gap ≈ +26%; the oracle's tuned
    // softmin family is a strong bar at this training budget). A breach
    // means the training stack or the oracle regressed, not noise — every
    // RNG stream here is seeded.
    assert!(gap <= 35.0, "learned optimality gap {gap:+.2}% exceeds the pinned 35% ceiling");
}

#[test]
#[ignore = "full train->certify loop on the phase-type family; quarantined for CI speed"]
fn quick_scale_training_stays_within_the_pinned_gap_phase_type() {
    // The oracle is a mean-matched *reference* here (Erlang-2 service),
    // so the bar is looser: the gap is indicative, not a certificate.
    let scenario = Scenario::new(
        scenario_from_file("oracle_tiny.json").config,
        EngineSpec::Ph { service: ServiceLaw::Erlang { k: 2, rate: 2.0 } },
    );
    let gap = learned_gap_pct(&scenario, 60);
    // Pinned from seed-1 quick-scale runs (gap ≈ +24% against the
    // mean-matched reference).
    assert!(gap <= 35.0, "learned reference gap {gap:+.2}% exceeds the pinned 35% ceiling");
}

#[test]
#[ignore = "train + distill + finite-N comparison; quarantined for CI speed"]
fn distilled_table_stays_within_five_percent_of_its_source_network() {
    let scenario = scenario_from_file("oracle_tiny.json");
    let result = train_scenario(&scenario, quick_ppo(), 60, 1, false).expect("training failed");
    let config = DistillConfig { oracle: quick_oracle(6), ..DistillConfig::default() };
    let distilled =
        distill_checkpoint(&result.checkpoint, &scenario, &config).expect("distillation failed");

    let engine = scenario.build().expect("engine build failed");
    let horizon = scenario.config.eval_episode_len();
    let nn = result.checkpoint.into_policy().expect("checkpoint policy");
    let table = distilled.checkpoint.into_policy().expect("distilled policy");
    let mc_nn = monte_carlo(&engine, &nn, horizon, 16, 1, 0);
    let mc_table = monte_carlo(&engine, &table, horizon, 16, 1, 0);
    // "Within 5%" one-sided: the DP-polished table may well *beat* its
    // source network; it must not fall more than 5% behind it.
    assert!(
        mc_table.mean() <= mc_nn.mean() * 1.05,
        "distilled table ({:.3} drops/queue) fell more than 5% behind its source \
         network ({:.3})",
        mc_table.mean(),
        mc_nn.mean()
    );
}

//! Property tests for the batched decision-epoch inference API:
//! [`UpperPolicy::decide_batch`] must agree element-wise with sequential
//! [`UpperPolicy::decide`] for **every** policy tier — fixed rules (the
//! trait's default loop), the neural policy in all four inference
//! configurations (f64 bit-compat, fast tanh, f32, f32 + fast tanh) and
//! the distilled tabular policy — on arbitrary simplex observations and
//! on observations produced by a fault-injected finite engine.
//!
//! The quarantined test at the bottom is the f32 serving-tier eval gate:
//! a freshly trained checkpoint evaluated under `--precision f32` must
//! land within a small tolerance of the f64 reference.

use mflb::core::mdp::{
    action_dim, observation_dim, FixedRulePolicy, ObservationBatch, UpperPolicy,
};
use mflb::core::{CrashFaults, DecisionRule, FaultPlan, JobSizeLaw, StateDist, SystemConfig};
use mflb::dp::SimplexGrid;
use mflb::nn::{Activation, Mlp};
use mflb::policy::{
    jsq_rule, rnd_rule, softmin_rule, InferenceConfig, NeuralUpperPolicy, TanhMode,
};
use mflb::rl::{DistilledCheckpoint, TabularPolicy, DISTILLED_FORMAT_VERSION};
use mflb::sim::episode::Engine;
use mflb::sim::{EngineSpec, Scenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper geometry: buffer 5 → 6 length states, 2 arrival levels, d = 2.
const ZS: usize = 6;
const LEVELS: usize = 2;
const D: usize = 2;

/// Strategy: a probability distribution over the `ZS` length states.
fn dist_strategy() -> impl Strategy<Value = StateDist> {
    proptest::collection::vec(0.01f64..1.0, ZS).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        StateDist::new(raw.into_iter().map(|v| v / total).collect())
    })
}

/// Strategy: a small batch of (distribution, λ level) observations.
fn obs_strategy() -> impl Strategy<Value = Vec<(StateDist, usize)>> {
    proptest::collection::vec((dist_strategy(), 0..LEVELS), 1..8)
}

/// A fixed random network in the given inference configuration.
fn neural(cfg: InferenceConfig) -> NeuralUpperPolicy {
    let mut rng = StdRng::seed_from_u64(7);
    let obs = observation_dim(ZS, LEVELS);
    let act = action_dim(ZS, D);
    let net = Mlp::new(&[obs, 16, act], Activation::Tanh, &mut rng);
    NeuralUpperPolicy::new(net, ZS, D, LEVELS).with_inference(cfg)
}

/// Every neural inference configuration, bit-compat first.
fn all_inference_configs() -> [InferenceConfig; 4] {
    [
        InferenceConfig { tanh_mode: TanhMode::BitCompat, f32_weights: false },
        InferenceConfig { tanh_mode: TanhMode::Fast, f32_weights: false },
        InferenceConfig { tanh_mode: TanhMode::BitCompat, f32_weights: true },
        InferenceConfig { tanh_mode: TanhMode::Fast, f32_weights: true },
    ]
}

/// A consistent hand-built distilled checkpoint → tabular policy.
fn tabular_fixture(config: &SystemConfig) -> TabularPolicy {
    let grid_resolution = 8;
    let points = SimplexGrid::new(ZS, grid_resolution).num_points();
    DistilledCheckpoint {
        format_version: DISTILLED_FORMAT_VERSION,
        scenario: Scenario::new(config.clone(), EngineSpec::Aggregate),
        grid_resolution,
        action_names: vec!["JSQ".into(), "SOFT(1)".into(), "SOFT(4)".into()],
        action_rules: vec![jsq_rule(ZS, D), softmin_rule(ZS, D, 1.0), softmin_rule(ZS, D, 4.0)],
        table: (0..points * LEVELS).map(|i| (i % 3) as u32).collect(),
        nn_fraction: 1.0,
        polish_slack: 0.005,
        source_steps: 0,
        source_seed: 0,
    }
    .into_policy()
    .expect("fixture table is consistent")
}

/// Asserts batched == sequential, byte for byte, on the given observations.
fn assert_batch_matches(
    policy: &dyn UpperPolicy,
    obs: &[(StateDist, usize)],
    config: &SystemConfig,
) {
    let mut batch = ObservationBatch::new(ZS, LEVELS);
    for (dist, idx) in obs {
        batch.push(dist.clone(), *idx, config.arrivals.level_rate(*idx));
    }
    let mut out = vec![DecisionRule::uniform(1, 1); obs.len()];
    policy.decide_batch(&batch, &mut out);
    for (i, (dist, idx)) in obs.iter().enumerate() {
        let seq = policy.decide(dist, *idx, config.arrivals.level_rate(*idx));
        assert_eq!(
            seq.as_slice(),
            out[i].as_slice(),
            "policy '{}' row {i}: decide_batch diverged from sequential decide",
            policy.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Element-wise batched/sequential agreement for every policy tier on
    /// arbitrary simplex observations.
    #[test]
    fn decide_batch_matches_decide_for_every_tier(obs in obs_strategy()) {
        let config = SystemConfig::paper().with_m_squared(10);
        let fixed = FixedRulePolicy::new(softmin_rule(ZS, D, 2.0), "SOFT(2)");
        assert_batch_matches(&fixed, &obs, &config);
        for cfg in all_inference_configs() {
            assert_batch_matches(&neural(cfg), &obs, &config);
        }
        assert_batch_matches(&tabular_fixture(&config), &obs, &config);
    }

    /// The same agreement on observations produced by a **fault-injected**
    /// event engine: crashes reshape the empirical distribution the policy
    /// sees, and the batched path must still match exactly.
    #[test]
    fn decide_batch_matches_decide_under_fault_plan(seed in 0u64..200) {
        let config = SystemConfig::paper().with_m_squared(10).with_dt(2.0);
        let plan = FaultPlan {
            crashes: Some(CrashFaults { mttf: 8.0, mttr: 4.0 }),
            ..FaultPlan::default()
        };
        let scenario = Scenario::new(
            config.clone(),
            EngineSpec::Event { job_size: JobSizeLaw::Exponential { rate: 1.0 } },
        )
        .with_faults(plan);
        let engine = scenario.build().expect("faulted scenario builds");

        // Drive the faulted engine with a fixed rule and harvest the
        // observations the upper policy would actually see.
        let driver = FixedRulePolicy::new(rnd_rule(ZS, D), "RND");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = engine.init_state(&mut rng);
        let mut lambda_idx = config.arrivals.sample_initial(&mut rng);
        let mut obs = Vec::new();
        for _ in 0..12 {
            let lambda = config.arrivals.level_rate(lambda_idx);
            let dist = engine.empirical(&state);
            obs.push((dist.clone(), lambda_idx));
            let rule = driver.decide(&dist, lambda_idx, lambda);
            engine.step(&mut state, &rule, lambda, &mut rng);
            lambda_idx = config.arrivals.step(lambda_idx, &mut rng);
        }

        for cfg in all_inference_configs() {
            assert_batch_matches(&neural(cfg), &obs, &config);
        }
        assert_batch_matches(&tabular_fixture(&config), &obs, &config);
    }
}

/// The f32 serving-tier eval gate (acceptance criterion of the batched
/// inference PR): a trained checkpoint evaluated with
/// `--precision f32` must reproduce the f64 reference drops within the
/// joint 95% confidence bands of the two Monte-Carlo estimates (with a
/// 2% relative floor).
///
/// Run with `cargo test --release -- --ignored` (CI's long-tests job).
#[test]
#[ignore = "trains a quick checkpoint for the precision gate; quarantined for CI speed"]
fn f32_eval_matches_f64_within_gate() {
    use mflb::rl::{
        evaluate_checkpoint, evaluate_checkpoint_configured, train_scenario, PpoConfig,
    };

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios/aggregate.json");
    let text = std::fs::read_to_string(&path).expect("aggregate scenario file");
    let scenario = Scenario::from_json(&text).expect("aggregate scenario parses");
    let ppo = PpoConfig {
        train_batch_size: 2000,
        minibatch_size: 250,
        num_epochs: 10,
        hidden: vec![32, 32],
        rollout_threads: 2,
        ..PpoConfig::paper()
    };
    let result = train_scenario(&scenario, ppo, 10, 1, false).expect("quick training");
    let ckpt = &result.checkpoint;

    let f64_report = evaluate_checkpoint(ckpt, &scenario, &[], 20, 1, 0).expect("f64 eval");
    let f32_report = evaluate_checkpoint_configured(
        ckpt,
        &scenario,
        &[],
        20,
        1,
        0,
        None,
        InferenceConfig { tanh_mode: TanhMode::BitCompat, f32_weights: true },
    )
    .expect("f32 eval");

    let row64 = f64_report.rows.iter().find(|r| r.policy == "MF (learned)").expect("f64 row");
    let row32 = f32_report.rows.iter().find(|r| r.policy == "MF (learned)").expect("f32 row");
    let (d64, d32) = (row64.mean_drops, row32.mean_drops);
    // The f32 logits differ from f64 by ~1e-7, which is enough to flip
    // individual multinomial draws and decorrelate whole trajectories in
    // the chaotic finite system — so the gate is statistical: the two
    // estimates must agree within their joint 95% confidence bands (with
    // a 2% relative floor for very tight bands).
    let tol = (row64.ci95 + row32.ci95).max(0.02 * d64).max(0.05);
    println!("f64 {d64:.4} vs f32 {d32:.4} drops/queue (gate ±{tol:.4})");
    assert!(
        (d32 - d64).abs() <= tol,
        "f32 inference drifted past the gate: f64 {d64:.4} vs f32 {d32:.4} (tol {tol:.4})"
    );
}

//! Sub-second canary that the workspace wiring stays sound: builds a
//! [`SystemConfig`], runs one finite-system episode on the
//! [`AggregateEngine`] and one limiting-model [`mean_field_step`], and
//! checks every produced distribution stays on the probability simplex.
//!
//! This test goes through the `mflb` umbrella crate on purpose — it fails
//! to *compile* if any re-export in `src/lib.rs` drifts from the workspace
//! crates, which is exactly the regression a manifest refactor can cause.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{mean_field_step, StateDist, SystemConfig};
use mflb::policy::jsq_rule;
use mflb::sim::{run_episode, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIMPLEX_TOL: f64 = 1e-9;

fn assert_on_simplex(dist: &[f64], what: &str) {
    let total: f64 = dist.iter().sum();
    assert!((total - 1.0).abs() < SIMPLEX_TOL, "{what}: mass {total} != 1 (dist {dist:?})");
    for (z, &p) in dist.iter().enumerate() {
        assert!(
            (-SIMPLEX_TOL..=1.0 + SIMPLEX_TOL).contains(&p),
            "{what}: p[{z}] = {p} outside [0, 1]"
        );
    }
}

#[test]
fn one_aggregate_episode_and_one_mean_field_step() {
    // Small but non-trivial: M = 50 queues, N = 2500 clients, 20 epochs.
    let config = SystemConfig::paper().with_m_squared(50).with_dt(5.0);
    let buffer = config.buffer;

    let engine = AggregateEngine::new(config);
    let policy = FixedRulePolicy::new(jsq_rule(buffer + 1, 2), "JSQ");
    let mut rng = StdRng::seed_from_u64(20260729);
    let outcome = run_episode(&engine, &policy, 20, &mut rng);

    assert_eq!(outcome.drops_per_epoch.len(), 20);
    assert!(outcome.total_drops >= 0.0, "negative drop count");
    assert!(
        outcome.mean_queue_len.iter().all(|&m| (0.0..=buffer as f64).contains(&m)),
        "mean queue length left [0, B]: {:?}",
        outcome.mean_queue_len
    );

    // One exact-discretization step of the limiting model from a hand-rolled
    // simplex point, under the same decision rule.
    let nu = StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03]);
    assert_on_simplex(nu.as_slice(), "initial ν");
    let step = mean_field_step(&nu, &jsq_rule(6, 2), 0.9, 1.0, 5.0);
    assert_on_simplex(step.next_dist.as_slice(), "ν after mean_field_step");
    assert!(step.expected_drops >= 0.0, "negative expected drops");
    assert!(
        step.arrival_rates.iter().all(|&r| r.is_finite() && r >= 0.0),
        "invalid arrival rates {:?}",
        step.arrival_rates
    );
}

//! End-to-end learning-pipeline test: PPO on the MFC MDP improves over its
//! initial (≈ uniform) policy, and the resulting checkpoint drives the
//! finite system identically after a save/load round-trip.

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{rnd_rule, NeuralUpperPolicy};
use mflb::rl::{Env, MfcEnv, PpoConfig, PpoTrainer};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_ppo() -> PpoConfig {
    // Variance-reduced quick settings (see DESIGN.md §5): the decision rule
    // determines the epoch's drops immediately, so a short credit horizon
    // preserves the optimum while slashing advantage noise.
    PpoConfig {
        gamma: 0.9,
        gae_lambda: 0.9,
        lr: 1e-3,
        train_batch_size: 1500,
        minibatch_size: 300,
        num_epochs: 10,
        kl_target: 0.02,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        rollout_threads: 4,
        ..PpoConfig::paper()
    }
}

#[test]
// Long-running reproduction test (~30-80 s in debug): run with
// `cargo test -- --ignored`.
#[ignore = "full PPO training run; quarantined for CI speed"]
fn ppo_improves_over_initial_policy_on_mfc_mdp() {
    let mut config = SystemConfig::paper().with_dt(5.0);
    config.train_episode_len = 60; // short episodes for a fast test
    let env = MfcEnv::new(config.clone());
    let mut trainer = PpoTrainer::new(&env, quick_ppo(), 5);
    let mut rng = StdRng::seed_from_u64(6);

    let mdp = MeanFieldMdp::new(config.clone());
    let as_policy = |t: &PpoTrainer| {
        NeuralUpperPolicy::new(
            t.policy_net().clone(),
            config.num_states(),
            config.d,
            config.arrivals.num_levels(),
        )
    };
    let before = mdp.evaluate(&as_policy(&trainer), 60, 20, &mut rng).mean();
    for _ in 0..20 {
        trainer.train_iteration(&mut rng);
    }
    let after = mdp.evaluate(&as_policy(&trainer), 60, 20, &mut rng).mean();
    assert!(
        after > before + 0.1,
        "PPO failed to improve deterministic return: {before} -> {after}"
    );

    // The improved policy must also beat blind RND.
    let rnd = FixedRulePolicy::new(rnd_rule(config.num_states(), config.d), "RND");
    let rnd_value = mdp.evaluate(&rnd, 60, 20, &mut rng).mean();
    assert!(after > rnd_value, "learned policy ({after}) must beat RND ({rnd_value})");
}

#[test]
fn checkpoint_roundtrip_drives_identical_finite_episodes() {
    let config = SystemConfig::paper().with_dt(3.0).with_size(400, 20);
    let env = MfcEnv::new(config.clone());
    let trainer = PpoTrainer::new(&env, quick_ppo(), 9);
    let policy = NeuralUpperPolicy::new(
        trainer.policy_net().clone(),
        config.num_states(),
        config.d,
        config.arrivals.num_levels(),
    );

    let path = std::env::temp_dir().join("mflb_itest_ckpt.json");
    policy.save(&path, config.dt, "integration-test").unwrap();
    let reloaded = NeuralUpperPolicy::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let engine = AggregateEngine::new(config.clone());
    let a = monte_carlo(&engine, &policy, 20, 6, 77, 0);
    let b = monte_carlo(&engine, &reloaded, 20, 6, 77, 0);
    assert_eq!(a.per_run, b.per_run, "reloaded checkpoint must act identically");
}

#[test]
fn mfc_env_observation_matches_policy_expectation() {
    // The env's observation layout and the policy's expectation are the
    // same canonical encoder: wiring an env obs through the policy network
    // must succeed with the right dims.
    let config = SystemConfig::paper();
    let mut env = MfcEnv::new(config.clone());
    let mut rng = StdRng::seed_from_u64(10);
    let obs = env.reset(&mut rng);
    assert_eq!(obs.len(), env.obs_dim());
    let trainer = PpoTrainer::new(&env, quick_ppo(), 11);
    let action = trainer.deterministic_action(&obs);
    assert_eq!(action.len(), env.act_dim());
    let rule = env.decode_action(&action);
    assert_eq!(rule.num_rows(), config.num_obs_tuples());
}

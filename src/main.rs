//! `mflb` — command-line front end for the mean-field load-balancing
//! library.
//!
//! ```text
//! mflb train --scenario spec.json --scale quick    # PPO -> versioned checkpoint
//! mflb eval --checkpoint ckpt.json --m 50,100      # vs JSQ/RND/softmin, JSON table
//! mflb eval --checkpoint ckpt.json --oracle        # + exact-DP optimality-gap column
//! mflb distill --checkpoint ckpt.json              # NN -> tabular lattice policy
//! mflb simulate --dt 5 --m 100 --policy jsq        # finite-system episode
//! mflb meanfield --dt 5 --policy softmin --beta 2  # limiting-model episode
//! mflb compare --dt 5 --m 100                      # JSQ vs RND vs softmin
//! mflb tune-beta --dt 5                            # optimal softmin(β*)
//! mflb dp-solve --dt 5 --grid 8 --out dp.json      # certified lattice optimum
//! mflb scv-compare --dt 5 --scv 4                  # phase-type service check
//! mflb bench --quick --workers 1                   # tracked perf suite -> BENCH_kernels.json
//! mflb serve --checkpoint ckpt.json --duration 50  # online dispatcher: job stream -> metrics
//! ```
//!
//! The heavy experiment pipeline lives in `mflb-bench` (one binary per
//! paper artifact); this CLI is the interactive, single-command surface a
//! downstream operator uses to train, evaluate and poke at a
//! configuration. Invoking `mflb` with no subcommand or an unknown one
//! prints the usage synopsis and exits with status 2.

use mflb::core::mdp::{FixedRulePolicy, UpperPolicy};
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{
    jsq_rule, optimize_beta, rnd_rule, softmin_rule, InferenceConfig, NeuralUpperPolicy, TanhMode,
};
use mflb::rl::{
    distill_checkpoint, evaluate_checkpoint_configured, oracle_feasibility, train_scenario,
    DistillConfig, DistilledCheckpoint, OracleConfig, PpoConfig, TrainingCheckpoint,
};
use mflb::sim::{monte_carlo, AggregateEngine, EngineSpec, Scenario, ServiceLaw};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn parse<T: std::str::FromStr>(flag: &str, default: T) -> T {
    arg(flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `true` iff a valueless flag (e.g. `--quick`) is present.
fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Worker-thread count for parallel fan-outs: `--workers` (the documented
/// spelling, so CI perf runs pin their core count) with `--threads` kept
/// as an alias.
fn workers_flag(default: usize) -> usize {
    parse("--workers", parse("--threads", default))
}

/// Shared `--precision f64|f32` / `--fast-math` parser: the neural
/// inference tier, spelled identically across eval / simulate / serve /
/// bench. `f64` (the default) is bit-compatible with training; `f32`
/// converts the network weights once at load; `--fast-math` swaps libm
/// tanh for the vectorizable rational approximation. Unknown values are
/// usage errors (exit 2). Rule-table tiers (jsq/rnd/softmin/distilled)
/// ignore the result.
fn inference_flags() -> InferenceConfig {
    let f32_weights = match arg("--precision").as_deref() {
        None | Some("f64") => false,
        Some("f32") => true,
        Some(other) => fail_usage(format!("unknown --precision '{other}' (f64|f32)")),
    };
    let tanh_mode = if has_flag("--fast-math") { TanhMode::Fast } else { TanhMode::BitCompat };
    InferenceConfig { tanh_mode, f32_weights }
}

/// Prints an error and exits with status 1 (runtime failure; status 2 is
/// reserved for usage errors).
fn fail(msg: impl AsRef<str>) -> ! {
    eprintln!("error: {}", msg.as_ref());
    std::process::exit(1);
}

/// Prints an error and exits with status 2 (usage error: the request
/// itself is malformed or infeasible, not a runtime failure).
fn fail_usage(msg: impl AsRef<str>) -> ! {
    eprintln!("error: {}", msg.as_ref());
    std::process::exit(2);
}

/// `--oracle-cache <dir>` with a `target/oracle` default; the literal
/// value `none` disables checkpoint caching.
fn oracle_cache_dir() -> Option<std::path::PathBuf> {
    match arg("--oracle-cache").as_deref() {
        Some("none") => None,
        Some(dir) => Some(std::path::PathBuf::from(dir)),
        None => Some(std::path::PathBuf::from("target/oracle")),
    }
}

/// Assembles the oracle solve configuration from `--oracle-grid`,
/// `--oracle-sweeps`, `--oracle-cache` and the worker flags.
fn oracle_config_from_flags() -> OracleConfig {
    OracleConfig {
        grid_resolution: parse("--oracle-grid", 8),
        max_sweeps: parse("--oracle-sweeps", 4_000),
        threads: workers_flag(0),
        cache_dir: oracle_cache_dir(),
        ..OracleConfig::default()
    }
}

fn build_config() -> SystemConfig {
    let dt: f64 = parse("--dt", 5.0);
    let m: usize = parse("--m", 100);
    let n: u64 = parse("--n", (m as u64) * (m as u64));
    let b: usize = parse("--buffer", 5);
    let d: usize = parse("--d", 2);
    SystemConfig::paper().with_dt(dt).with_buffer(b).with_d(d).with_size(n, m)
}

/// Resolves the scenario: `--scenario <file>` wins; otherwise one is built
/// from `--engine` plus the common flags.
fn build_scenario() -> Scenario {
    if let Some(path) = arg("--scenario") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        let scenario =
            Scenario::from_json(&text).unwrap_or_else(|e| fail(format!("parse {path}: {e}")));
        if let Err(e) = scenario.validate() {
            fail(format!("invalid scenario {path}: {e}"));
        }
        return scenario;
    }
    let config = build_config();
    let engine = match arg("--engine").as_deref().unwrap_or("aggregate") {
        "aggregate" => EngineSpec::Aggregate,
        "perclient" => EngineSpec::PerClient,
        "staggered" => EngineSpec::Staggered { cohorts: parse("--cohorts", 4) },
        "ph" => {
            EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv: parse("--scv", 2.0) } }
        }
        "joblevel" => EngineSpec::JobLevel,
        "graph" => EngineSpec::Graph { topology: build_topology(), shard_size: None },
        "event" => EngineSpec::Event { job_size: build_job_size() },
        other => fail(format!(
            "unknown --engine '{other}' (aggregate|perclient|staggered|ph|joblevel|graph|event; \
             heterogeneous pools need a --scenario file)"
        )),
    };
    Scenario::new(config, engine)
}

/// Applies `--faults <plan.json>` to a resolved scenario. A malformed or
/// incompatible plan is a usage error (exit 2) caught before any
/// simulation work; the flag overrides a scenario-embedded plan.
fn apply_faults_flag(scenario: Scenario) -> Scenario {
    let Some(path) = arg("--faults") else { return scenario };
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail_usage(format!("{path}: {e}")));
    let plan = mflb::core::FaultPlan::from_json(&text)
        .unwrap_or_else(|e| fail_usage(format!("parse {path}: {e}")));
    let faulted = scenario.with_faults(plan);
    if let Err(e) = faulted.validate() {
        fail_usage(format!("fault plan {path}: {e}"));
    }
    faulted
}

/// Resolves `--topology` plus its parameters for `--engine graph`.
fn build_topology() -> mflb::core::Topology {
    use mflb::core::Topology;
    match arg("--topology").as_deref().unwrap_or("ring") {
        "ring" => Topology::Ring { radius: parse("--radius", 1) },
        "torus" => Topology::Torus { radius: parse("--radius", 1) },
        "random" => {
            Topology::RandomRegular { degree: parse("--degree", 4), seed: parse("--graph-seed", 1) }
        }
        "full" => Topology::FullMesh,
        other => fail(format!(
            "unknown --topology '{other}' (ring|torus|random|full; \
             richer graphs need a --scenario file)"
        )),
    }
}

/// Resolves `--job-size` plus its parameters for `--engine event`.
fn build_job_size() -> mflb::core::JobSizeLaw {
    use mflb::core::JobSizeLaw;
    match arg("--job-size").as_deref().unwrap_or("exp") {
        "exp" => JobSizeLaw::Exponential { rate: parse("--job-rate", 1.0) },
        "pareto" => JobSizeLaw::Pareto {
            shape: parse("--job-shape", 2.0),
            scale: parse("--job-scale", 0.5),
        },
        "bpareto" => JobSizeLaw::BoundedPareto {
            shape: parse("--job-shape", 1.5),
            lo: parse("--job-lo", 0.2),
            hi: parse("--job-hi", 20.0),
        },
        other => fail(format!(
            "unknown --job-size '{other}' (exp|pareto|bpareto; richer laws need a --scenario file)"
        )),
    }
}

/// Builds the `--policy` selection for a scenario. Rule-based baselines
/// are lifted to the composite `(length, class)` space on heterogeneous
/// pools; checkpoints are strictly validated against the scenario's shape.
fn build_policy_for(scenario: &Scenario) -> Box<dyn UpperPolicy + Sync + Send> {
    let name = arg("--policy").unwrap_or_else(|| "jsq".into());
    // Parsed unconditionally so a typo'd --precision exits 2 on every tier.
    let inference = inference_flags();
    let config = &scenario.config;
    let zs = config.num_states();
    let classes = match &scenario.engine {
        EngineSpec::Hetero { rates } => mflb::rl::hetero_classes(rates).1.len(),
        _ => 1,
    };
    let lift = |rule: mflb::core::DecisionRule| {
        if classes > 1 {
            mflb::policy::lift_to_composite(&rule, zs, classes)
        } else {
            rule
        }
    };
    match name.as_str() {
        "jsq" => Box::new(FixedRulePolicy::new(lift(jsq_rule(zs, config.d)), "JSQ(d)")),
        "rnd" => Box::new(FixedRulePolicy::new(lift(rnd_rule(zs, config.d)), "RND")),
        "softmin" => {
            let beta: f64 = parse("--beta", 1.0);
            Box::new(FixedRulePolicy::new(
                lift(softmin_rule(zs, config.d, beta)),
                format!("SOFT({beta})"),
            ))
        }
        "checkpoint" => {
            let path = arg("--checkpoint").unwrap_or_else(|| {
                fail("--policy checkpoint needs --checkpoint <path>");
            });
            // Versioned training checkpoints first, legacy format second.
            match TrainingCheckpoint::load(&path) {
                Ok(ckpt) => {
                    ckpt.validate_for(scenario).unwrap_or_else(|e| {
                        fail(format!("{path} does not fit this scenario: {e}"))
                    });
                    Box::new(
                        ckpt.into_policy()
                            .unwrap_or_else(|e| fail(format!("{path}: {e}")))
                            .with_inference(inference),
                    )
                }
                Err(versioned_err) => match NeuralUpperPolicy::load(&path) {
                    Ok(p) => {
                        // Legacy checkpoints carry no scenario; validate
                        // their network dims against this scenario's shape
                        // so a mismatch fails here, not inside an engine.
                        let shape = mflb::rl::PolicyShape::for_scenario(scenario);
                        if p.net().input_dim() != shape.obs_dim()
                            || p.net().output_dim() != shape.act_dim()
                        {
                            fail(format!(
                                "{path} does not fit this scenario: legacy checkpoint \
                                 network is {} -> {}, scenario needs {} -> {}",
                                p.net().input_dim(),
                                p.net().output_dim(),
                                shape.obs_dim(),
                                shape.act_dim()
                            ));
                        }
                        Box::new(p.with_inference(inference))
                    }
                    Err(legacy_err) => {
                        fail(format!("load {path}: {versioned_err} (legacy format: {legacy_err})"))
                    }
                },
            }
        }
        "distilled" => {
            let path = arg("--checkpoint").unwrap_or_else(|| {
                fail("--policy distilled needs --checkpoint <path>");
            });
            let table = DistilledCheckpoint::load(&path).unwrap_or_else(|e| fail(e));
            table
                .validate_for(scenario)
                .unwrap_or_else(|e| fail(format!("{path} does not fit this scenario: {e}")));
            Box::new(table.into_policy().unwrap_or_else(|e| fail(format!("{path}: {e}"))))
        }
        other => {
            eprintln!("unknown policy '{other}' (jsq|rnd|softmin|checkpoint|distilled)");
            std::process::exit(2);
        }
    }
}

/// Homogeneous-model variant of [`build_policy_for`] (the limiting-model
/// subcommands have no engine spec).
fn build_policy(config: &SystemConfig) -> Box<dyn UpperPolicy + Sync + Send> {
    build_policy_for(&Scenario::new(config.clone(), EngineSpec::Aggregate))
}

/// The CLI's PPO presets. `quick` is sized so `mflb train --scale quick`
/// finishes in minutes on a laptop core while still clearing the RND
/// baseline; `paper` is Table 2 verbatim.
fn ppo_for_scale(scale: &str, threads: usize) -> (PpoConfig, usize) {
    let (mut ppo, iters) = match scale {
        "paper" | "full" => (PpoConfig::paper(), 6250),
        "quick" => (
            PpoConfig {
                gamma: 0.9,
                gae_lambda: 0.9,
                lr: 1e-3,
                train_batch_size: 2000,
                minibatch_size: 250,
                num_epochs: 10,
                kl_target: 0.02,
                hidden: vec![32, 32],
                initial_log_std: -0.5,
                ..PpoConfig::paper()
            },
            60,
        ),
        other => {
            eprintln!("error: unknown --scale value `{other}` (expected quick|paper)");
            std::process::exit(2);
        }
    };
    ppo.rollout_threads = threads.max(1);
    (ppo, iters)
}

fn cmd_train() {
    let scenario = apply_faults_flag(build_scenario());
    let scale = arg("--scale").unwrap_or_else(|| "quick".into());
    let threads: usize = workers_flag(1);
    let seed: u64 = parse("--seed", 1);
    let (ppo, default_iters) = ppo_for_scale(&scale, threads);
    let iters: usize = parse("--iters", default_iters);
    let out = arg("--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::path::PathBuf::from(format!(
            "target/checkpoints/mf_{}_dt{}.json",
            engine_slug(&scenario.engine),
            scenario.config.dt
        ))
    });
    let curve_path = arg("--curve").map(std::path::PathBuf::from).unwrap_or_else(|| {
        let mut p = out.clone();
        p.set_extension("curve.json");
        p
    });

    println!(
        "training: engine={} Δt={} B={} d={} T={} scale={scale} iters={iters} seed={seed}",
        engine_slug(&scenario.engine),
        scenario.config.dt,
        scenario.config.buffer,
        scenario.config.d,
        scenario.config.train_episode_len,
    );
    let t0 = std::time::Instant::now();
    let result = train_scenario(&scenario, ppo, iters, seed, true).unwrap_or_else(|e| fail(e));
    println!(
        "trained {} steps in {:.1}s",
        result.checkpoint.total_steps,
        t0.elapsed().as_secs_f64()
    );

    result.checkpoint.save(&out).unwrap_or_else(|e| fail(e));
    println!(
        "checkpoint (format v{}) written to {}",
        result.checkpoint.format_version,
        out.display()
    );
    let curve_json = serde_json::to_string_pretty(&result.checkpoint.curve)
        .expect("curve serialization cannot fail");
    if let Some(parent) = curve_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&curve_path, curve_json).unwrap_or_else(|e| fail(format!("write curve: {e}")));
    println!("training curve written to {}", curve_path.display());
    println!("next: mflb eval --checkpoint {}", out.display());
}

fn engine_slug(spec: &EngineSpec) -> &'static str {
    match spec {
        EngineSpec::PerClient => "perclient",
        EngineSpec::Aggregate => "aggregate",
        EngineSpec::Hetero { .. } => "hetero",
        EngineSpec::Staggered { .. } => "staggered",
        EngineSpec::Ph { .. } => "ph",
        EngineSpec::JobLevel => "joblevel",
        EngineSpec::Graph { .. } => "graph",
        EngineSpec::Event { .. } => "event",
    }
}

fn cmd_eval() {
    let path = arg("--checkpoint").unwrap_or_else(|| fail("eval needs --checkpoint <path>"));
    let ckpt = TrainingCheckpoint::load(&path).unwrap_or_else(|e| fail(e));
    let scenario = apply_faults_flag(match arg("--scenario") {
        Some(p) => {
            let text = std::fs::read_to_string(&p).unwrap_or_else(|e| fail(format!("{p}: {e}")));
            Scenario::from_json(&text).unwrap_or_else(|e| fail(format!("parse {p}: {e}")))
        }
        None => ckpt.scenario.clone(),
    });
    let m_sweep: Vec<usize> = arg("--m")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().unwrap_or_else(|_| fail(format!("bad --m entry '{t}'"))))
                .collect()
        })
        .unwrap_or_default();
    let runs: usize = parse("--runs", 20);
    let seed: u64 = parse("--seed", 1);
    let threads: usize = workers_flag(0);
    let inference = inference_flags();
    let max_gap: Option<f64> = arg("--max-gap")
        .map(|v| v.parse().unwrap_or_else(|_| fail_usage(format!("bad --max-gap value '{v}'"))));

    // `--max-gap` is meaningless without an oracle, so it implies one.
    let oracle = if has_flag("--oracle") || max_gap.is_some() {
        let cfg = oracle_config_from_flags();
        // Pre-flight: unsupported engines and oversized lattices are
        // usage errors (exit 2) caught before minutes of value iteration.
        if let Err(e) = oracle_feasibility(&scenario, &cfg) {
            fail_usage(e);
        }
        Some(cfg)
    } else {
        None
    };

    let report = evaluate_checkpoint_configured(
        &ckpt,
        &scenario,
        &m_sweep,
        runs,
        seed,
        threads,
        oracle.as_ref(),
        inference,
    )
    .unwrap_or_else(|e| fail(e));
    println!(
        "eval: engine={} Δt={} Te={} ({} runs each, seed {seed}{})",
        engine_slug(&scenario.engine),
        scenario.config.dt,
        report.horizon,
        report.runs,
        if inference.is_bit_compat() {
            String::new()
        } else {
            format!(", inference {}", inference.label())
        },
    );
    let with_gap = report.oracle.is_some();
    if with_gap {
        println!(
            "{:<16} {:>6} {:>10} {:>14} {:>10} {:>10} {:>9}",
            "policy", "M", "N", "drops/queue", "±95%", "drop frac", "gap %"
        );
    } else {
        println!(
            "{:<16} {:>6} {:>10} {:>14} {:>10} {:>10}",
            "policy", "M", "N", "drops/queue", "±95%", "drop frac"
        );
    }
    for row in &report.rows {
        if with_gap {
            println!(
                "{:<16} {:>6} {:>10} {:>14.3} {:>10.3} {:>10.4} {:>9}",
                row.policy,
                row.m,
                row.n,
                row.mean_drops,
                row.ci95,
                row.drop_fraction,
                row.gap_pct.map_or("-".into(), |g| format!("{g:+.2}")),
            );
        } else {
            println!(
                "{:<16} {:>6} {:>10} {:>14.3} {:>10.3} {:>10.4}",
                row.policy, row.m, row.n, row.mean_drops, row.ci95, row.drop_fraction
            );
        }
    }
    if let Some(o) = &report.oracle {
        println!(
            "oracle: G={} lattice, {} sweeps, residual {:.2e}, {}{}",
            o.grid_resolution,
            o.sweeps,
            o.residual,
            if o.cache_hit { "cache hit, " } else { "" },
            if o.exact {
                "exact certificate".to_string()
            } else {
                format!("reference ({})", o.note)
            },
        );
    }
    let learned = report.mean_drops_of("MF (learned)");
    let rnd = report.rows.iter().find(|r| r.policy == "RND").map(|r| r.mean_drops);
    if let (Some(l), Some(r)) = (learned, rnd) {
        if l < r {
            println!("[check] learned policy beats RND ({l:.3} < {r:.3} drops/queue)");
        } else {
            println!("[check] WARNING: learned policy does not beat RND ({l:.3} >= {r:.3})");
        }
    }
    let out = arg("--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::path::PathBuf::from(format!(
            "target/experiments/eval_{}_dt{}.json",
            engine_slug(&scenario.engine),
            scenario.config.dt
        ))
    });
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| fail(format!("write report: {e}")));
    println!("JSON table written to {}", out.display());

    // Regression gate (the bench-diff pattern): the worst learned-policy
    // gap across the sweep must stay under --max-gap percent.
    if let Some(cap) = max_gap {
        let worst = report
            .rows
            .iter()
            .filter(|r| r.policy == "MF (learned)")
            .filter_map(|r| r.gap_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        if worst.is_finite() && worst <= cap {
            println!("[gate] learned optimality gap {worst:+.2}% within --max-gap {cap}%");
        } else {
            eprintln!(
                "error: learned optimality gap {worst:+.2}% exceeds the --max-gap {cap}% gate"
            );
            std::process::exit(1);
        }
    }
}

/// `mflb distill`: project a trained checkpoint onto a tabular lattice
/// policy (greedy-match against the softmin library + DP-polish sweep)
/// and write the versioned [`DistilledCheckpoint`] artifact.
fn cmd_distill() {
    let path = arg("--checkpoint").unwrap_or_else(|| fail("distill needs --checkpoint <path>"));
    let ckpt = TrainingCheckpoint::load(&path).unwrap_or_else(|e| fail(e));
    let scenario = match arg("--scenario") {
        Some(p) => {
            let text = std::fs::read_to_string(&p).unwrap_or_else(|e| fail(format!("{p}: {e}")));
            Scenario::from_json(&text).unwrap_or_else(|e| fail(format!("parse {p}: {e}")))
        }
        None => ckpt.scenario.clone(),
    };
    let mut oracle = oracle_config_from_flags();
    // `--grid` is the natural spelling here (mirrors dp-solve);
    // --oracle-grid stays as the shared alias.
    oracle.grid_resolution = parse("--grid", oracle.grid_resolution);
    if let Err(e) = oracle_feasibility(&scenario, &oracle) {
        fail_usage(e);
    }
    let config = DistillConfig { oracle, polish_slack: parse("--slack", 0.005) };

    let t0 = std::time::Instant::now();
    let result = distill_checkpoint(&ckpt, &scenario, &config).unwrap_or_else(|e| fail(e));
    let table = &result.checkpoint;
    println!(
        "distilled {} lattice entries (G={}, {} levels, {} actions) in {:.1}s: \
         {:.0}% network-matched, {:.0}% oracle-corrected (slack {})",
        table.table.len(),
        table.grid_resolution,
        table.scenario.config.arrivals.num_levels(),
        table.action_names.len(),
        t0.elapsed().as_secs_f64(),
        table.nn_fraction * 100.0,
        (1.0 - table.nn_fraction) * 100.0,
        table.polish_slack,
    );
    if !result.oracle.exactness.is_exact() {
        println!("note: {}", result.oracle.exactness.note());
    }

    let out = arg("--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::path::PathBuf::from(format!(
            "target/checkpoints/distilled_{}_dt{}.json",
            engine_slug(&scenario.engine),
            scenario.config.dt
        ))
    });
    table.save(&out).unwrap_or_else(|e| fail(e));
    println!(
        "distilled checkpoint (format v{}) written to {}",
        table.format_version,
        out.display()
    );

    // Deployment check: the table vs its source network in the scenario's
    // finite system (skippable with --runs 0).
    let runs: usize = parse("--runs", 8);
    if runs > 0 {
        let seed: u64 = parse("--seed", 1);
        let engine = scenario.build().unwrap_or_else(|e| fail(e.to_string()));
        let horizon = scenario.config.eval_episode_len();
        let nn = ckpt.into_policy().unwrap_or_else(|e| fail(e));
        let tabular = table.into_policy().unwrap_or_else(|e| fail(e));
        let mc_nn = monte_carlo(&engine, &nn, horizon, runs, seed, workers_flag(0));
        let mc_tab = monte_carlo(&engine, &tabular, horizon, runs, seed, workers_flag(0));
        println!(
            "finite-system check (M={}, {runs} runs): network {:.3} ± {:.3}, \
             table {:.3} ± {:.3} drops/queue",
            scenario.config.num_queues,
            mc_nn.mean(),
            mc_nn.ci95(),
            mc_tab.mean(),
            mc_tab.ci95(),
        );
    }
    println!("deploy it via --policy distilled --checkpoint {}", out.display());
}

fn cmd_simulate() {
    let scenario = apply_faults_flag(build_scenario());
    if let Some(path) = arg("--record-trace") {
        record_trace(&scenario, &path);
        return;
    }
    let config = scenario.config.clone();
    let policy = build_policy_for(&scenario);
    let runs: usize = parse("--runs", 20);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let workers = workers_flag(0);
    // Engine-internal workers (the sharded graph engine's shard fan-out;
    // never affects results) vs the Monte-Carlo run fan-out: a single
    // sharded run parallelizes inside the epoch, so keep the run pool
    // sequential when the engine itself goes wide.
    let engine = scenario.build().unwrap_or_else(|e| fail(e.to_string())).with_workers(workers);
    let mc = monte_carlo(&engine, policy.as_ref(), horizon, runs, seed, 0);
    println!(
        "finite system engine={} N={} M={} Δt={} Te={horizon} policy={}",
        engine_slug(&scenario.engine),
        config.num_clients,
        config.num_queues,
        config.dt,
        policy.name()
    );
    println!("drops/queue over episode: {:.3} ± {:.3} ({} runs)", mc.mean(), mc.ci95(), runs);
}

/// `mflb simulate --record-trace <out.jsonl>`: run the synthetic serve
/// loop once and dump every job the engine consumed — in the serve trace
/// schema, in dispatch order — so `mflb serve --trace <out.jsonl>` at the
/// same seed and duration replays the run bit for bit.
fn record_trace(scenario: &Scenario, out: &str) {
    use mflb::sim::{serve_with, EventEngine, JobSource, ServeOptions};
    let EngineSpec::Event { job_size } = &scenario.engine else {
        fail_usage("--record-trace needs an event-engine scenario (--engine event)");
    };
    let seed: u64 = parse("--seed", 1);
    let duration: f64 = parse("--duration", scenario.config.eval_time);
    if !(duration > 0.0 && duration.is_finite()) {
        fail_usage(format!("--duration must be positive and finite, got {duration}"));
    }
    let mut engine = EventEngine::new(scenario.config.clone(), job_size.clone());
    if let Some(plan) = &scenario.faults {
        engine = engine.with_faults(plan.clone());
    }
    let policy = build_policy_for(scenario);
    let opts = ServeOptions { duration: Some(duration), seed, ..Default::default() };
    let mut jobs = Vec::new();
    let report = serve_with(
        &engine,
        policy.as_ref(),
        policy.name(),
        None,
        &JobSource::Synthetic,
        &opts,
        Some(&mut jobs),
        |_| {},
    )
    .unwrap_or_else(|e| fail(e.to_string()));
    let mut text = String::with_capacity(jobs.len() * 32);
    for job in &jobs {
        text.push_str(&job.to_jsonl());
        text.push('\n');
    }
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(out, text).unwrap_or_else(|e| fail(format!("write {out}: {e}")));
    println!(
        "recorded {} jobs over {:.1} time units to {out} (seed {seed}); replay with: \
         mflb serve --trace {out} --seed {seed} --duration {duration}",
        jobs.len(),
        report.sim_time,
    );
}

fn cmd_meanfield() {
    let config = build_config();
    let policy = build_policy(&config);
    let episodes: usize = parse("--episodes", 100);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let eval = mdp.evaluate(policy.as_ref(), horizon, episodes, &mut rng);
    println!("mean-field model Δt={} Te={horizon} policy={}", config.dt, policy.name());
    println!(
        "expected drops/queue over episode: {:.3} ± {:.3} ({episodes} episodes)",
        -eval.mean(),
        eval.ci95_half_width()
    );
}

fn cmd_compare() {
    let config = build_config();
    let runs: usize = parse("--runs", 20);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let engine = AggregateEngine::new(config.clone());
    let zs = config.num_states();
    println!(
        "N={} M={} Δt={} Te={horizon} ({} runs each)",
        config.num_clients, config.num_queues, config.dt, runs
    );
    let beta = optimize_beta(&config, horizon.min(100), 6, seed).beta;
    let policies: Vec<(String, Box<dyn UpperPolicy + Sync + Send>)> = vec![
        ("JSQ(2)".into(), Box::new(FixedRulePolicy::new(jsq_rule(zs, config.d), "JSQ"))),
        ("RND".into(), Box::new(FixedRulePolicy::new(rnd_rule(zs, config.d), "RND"))),
        (
            format!("SOFT(β*={beta:.2})"),
            Box::new(FixedRulePolicy::new(softmin_rule(zs, config.d, beta), "SOFT")),
        ),
    ];
    for (name, p) in &policies {
        let mc = monte_carlo(&engine, p.as_ref(), horizon, runs, seed, 0);
        println!("  {name:<16} {:8.3} ± {:.3}", mc.mean(), mc.ci95());
    }
}

fn cmd_tune_beta() {
    let config = build_config();
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len().min(150);
    let res = optimize_beta(&config, horizon, 10, seed);
    println!("Δt={}: β* = {:.3}  (mean-field return {:.3})", config.dt, res.beta, res.value);
    println!("trace (β → return):");
    let mut trace = res.trace.clone();
    trace.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (b, v) in trace.iter().take(24) {
        println!("  {b:>8.3} -> {v:>9.3}");
    }
}

fn cmd_dp_solve() {
    use mflb::dp::{ActionLibrary, DpConfig, DpSolution};
    let config = build_config();
    let grid: usize = parse("--grid", 8);
    let zs = config.num_states();
    let t0 = std::time::Instant::now();
    let dp_cfg = DpConfig { grid_resolution: grid, tol: 1e-6, max_sweeps: 4000, threads: 0 };
    let sol = DpSolution::solve(&config, ActionLibrary::softmin_default(zs, config.d), &dp_cfg);
    println!(
        "solved Δt={} B={} on a G={grid} lattice ({} states x {} levels): {} sweeps, {:.1}s",
        config.dt,
        config.buffer,
        sol.grid().num_points(),
        config.arrivals.num_levels(),
        sol.sweeps,
        t0.elapsed().as_secs_f64()
    );
    let nu0 = mflb::core::StateDist::all_empty(config.buffer);
    for l in 0..config.arrivals.num_levels() {
        println!(
            "  V(ν₀, λ-level {l}) = {:.3}, greedy action: {}",
            sol.value(&nu0, l),
            sol.actions().name(sol.greedy_action(&nu0, l))
        );
    }
    if let Some(path) = arg("--out") {
        sol.save_json(&path).unwrap_or_else(|e| fail(e.to_string()));
        println!("checkpoint written to {path}");
    }

    // Quick deployment check against the baselines in the limiting model.
    let mdp = MeanFieldMdp::new(config.clone());
    let horizon = config.eval_episode_len().min(120);
    let mut rng = StdRng::seed_from_u64(parse("--seed", 1));
    let policy = sol.into_policy();
    let v_dp = mdp.evaluate(&policy, horizon, 24, &mut rng).mean();
    let jsq = FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ");
    let v_jsq = mdp.evaluate(&jsq, horizon, 24, &mut rng).mean();
    println!("mean-field return over {horizon} epochs: DP {v_dp:.2} vs JSQ(d) {v_jsq:.2}");
}

fn cmd_scv_compare() {
    use mflb::core::PhMeanFieldMdp;
    use mflb::queue::PhaseType;
    use mflb::sim::{monte_carlo, PhAggregateEngine};
    let config = build_config();
    let scv: f64 = parse("--scv", 2.0);
    let runs: usize = parse("--runs", 16);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let service = PhaseType::fit_mean_scv(1.0 / config.service_rate, scv);
    println!(
        "service: mean {:.3}, SCV {:.3}, {} phases (two-moment PH fit)",
        service.mean(),
        service.scv(),
        service.num_phases()
    );
    let policy = build_policy(&config);

    let mdp = PhMeanFieldMdp::new(config.clone(), service.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mf = mflb::linalg::stats::Summary::new();
    for _ in 0..24 {
        mf.push(-mdp.rollout(policy.as_ref(), horizon, &mut rng).total_return);
    }
    let engine = PhAggregateEngine::new(config.clone(), service);
    let fin = monte_carlo(&engine, policy.as_ref(), horizon, runs, seed, 0).drops;
    println!(
        "policy {} at Δt={} Te={horizon}: mean-field drops {:.3} ± {:.3}, finite (M={}) {:.3} ± {:.3}",
        policy.name(),
        config.dt,
        mf.mean(),
        mf.ci95_half_width(),
        config.num_queues,
        fin.mean(),
        fin.ci95_half_width()
    );
}

/// `mflb serve`: stand up the continuous-time event engine as an online
/// dispatcher — load a policy, ingest jobs from a synthetic Poisson/MMPP
/// generator or a replayed JSONL trace, route each under
/// sampled-and-delayed observations and emit metrics.
///
/// Stdout is machine-readable: one JSON line per reporting interval
/// (`ServeTick`) followed by the final `ServeReport` as the last line;
/// human narration goes to stderr. Every malformed request — unknown
/// policy tier, missing or unloadable checkpoint, bad numeric flag,
/// malformed trace line — exits 2 *before* any simulation work starts;
/// runtime failures exit 1.
fn cmd_serve() {
    use mflb::core::{FaultPlan, JobSizeLaw};
    use mflb::sim::{
        parse_trace, serve_with, EventEngine, JobSource, LineTraceReader, ServeOptions,
    };
    use std::cell::RefCell;

    // Strict flag parsing: serve is the deployment surface, so a typo'd
    // value must die with exit 2 instead of silently running a default.
    fn strict<T: std::str::FromStr>(flag: &str) -> Option<T> {
        arg(flag)
            .map(|v| v.parse().unwrap_or_else(|_| fail_usage(format!("bad {flag} value '{v}'"))))
    }

    // With a --checkpoint but no explicit tier, serving the checkpoint is
    // what the caller meant — defaulting to jsq would silently ignore it.
    let ckpt_path = arg("--checkpoint");
    let default_tier = if ckpt_path.is_some() { "checkpoint" } else { "jsq" };
    let policy_name = arg("--policy").unwrap_or_else(|| default_tier.into());
    if !matches!(policy_name.as_str(), "jsq" | "rnd" | "softmin" | "checkpoint" | "distilled") {
        fail_usage(format!(
            "unknown --policy '{policy_name}' (jsq|rnd|softmin|checkpoint|distilled)"
        ));
    }
    let inference = inference_flags();
    let max_jobs: Option<u64> = strict("--max-jobs");
    if max_jobs == Some(0) {
        fail_usage("--max-jobs must be at least 1");
    }
    let duration: Option<f64> = strict("--duration");
    if let Some(t) = duration {
        if !t.is_finite() || t <= 0.0 {
            fail_usage(format!("--duration must be positive and finite, got {t}"));
        }
    }
    let report_every: usize = strict("--report-every").unwrap_or(10);
    if report_every == 0 {
        fail_usage("--report-every must be at least 1");
    }
    let seed: u64 = strict("--seed").unwrap_or(1);

    // Graceful-degradation knobs: bounded admission plus the staleness
    // watchdog (which needs a static tier to fall back to).
    let admission_cap: Option<u64> = strict("--admission-cap");
    if admission_cap == Some(0) {
        fail_usage("--admission-cap must be at least 1");
    }
    let staleness_threshold: Option<u64> = strict("--staleness-threshold");
    if staleness_threshold == Some(0) {
        fail_usage("--staleness-threshold must be at least 1");
    }
    let fallback_name = arg("--fallback");
    match (&staleness_threshold, &fallback_name) {
        (Some(_), None) => fail_usage("--staleness-threshold needs --fallback jsq|softmin"),
        (None, Some(_)) => fail_usage("--fallback needs --staleness-threshold <intervals>"),
        _ => {}
    }

    // Checkpoint tiers load (and shape-validate) before the trace is
    // touched, so a wrong path fails in milliseconds, not after I/O.
    let needs_ckpt = matches!(policy_name.as_str(), "checkpoint" | "distilled");
    if needs_ckpt && ckpt_path.is_none() {
        fail_usage(format!("--policy {policy_name} needs --checkpoint <path>"));
    }
    let mut loaded_train: Option<TrainingCheckpoint> = None;
    let mut loaded_distilled: Option<DistilledCheckpoint> = None;
    match policy_name.as_str() {
        "checkpoint" => {
            let path = ckpt_path.as_deref().expect("checked above");
            loaded_train = Some(TrainingCheckpoint::load(path).unwrap_or_else(|e| fail_usage(e)));
        }
        "distilled" => {
            let path = ckpt_path.as_deref().expect("checked above");
            loaded_distilled =
                Some(DistilledCheckpoint::load(path).unwrap_or_else(|e| fail_usage(e)));
        }
        _ => {}
    }

    // Scenario resolution: --scenario wins, then the checkpoint's
    // embedded scenario, then the common engine flags.
    let scenario = if let Some(p) = arg("--scenario") {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| fail_usage(format!("{p}: {e}")));
        let s =
            Scenario::from_json(&text).unwrap_or_else(|e| fail_usage(format!("parse {p}: {e}")));
        if let Err(e) = s.validate() {
            fail_usage(format!("invalid scenario {p}: {e}"));
        }
        s
    } else if let Some(c) = &loaded_train {
        c.scenario.clone()
    } else if let Some(c) = &loaded_distilled {
        c.scenario.clone()
    } else {
        build_scenario()
    };

    // Any homogeneous scenario serves: non-event engines adopt the event
    // engine with unit-mean exponential job sizes, so checkpoints trained
    // on the epoch engines deploy unchanged. Heterogeneous pools observe
    // a composite (length, class) space the job-level engine lacks.
    let job_size = match &scenario.engine {
        EngineSpec::Event { job_size } => job_size.clone(),
        EngineSpec::Hetero { .. } => fail_usage(
            "serve cannot drive heterogeneous pools; use a homogeneous scenario \
             (non-event engines serve with exponential job sizes)",
        ),
        _ => JobSizeLaw::Exponential { rate: 1.0 },
    };

    let zs = scenario.config.num_states();
    let d = scenario.config.d;
    let policy: Box<dyn UpperPolicy + Sync + Send> = match policy_name.as_str() {
        "jsq" => Box::new(FixedRulePolicy::new(jsq_rule(zs, d), "JSQ(d)")),
        "rnd" => Box::new(FixedRulePolicy::new(rnd_rule(zs, d), "RND")),
        "softmin" => {
            let beta: f64 = strict("--beta").unwrap_or(1.0);
            Box::new(FixedRulePolicy::new(softmin_rule(zs, d, beta), format!("SOFT({beta})")))
        }
        "checkpoint" => {
            let ckpt = loaded_train.take().expect("loaded above");
            ckpt.validate_for(&scenario).unwrap_or_else(|e| {
                fail_usage(format!("checkpoint does not fit this scenario: {e}"))
            });
            Box::new(ckpt.into_policy().unwrap_or_else(|e| fail_usage(e)).with_inference(inference))
        }
        "distilled" => {
            let table = loaded_distilled.take().expect("loaded above");
            table.validate_for(&scenario).unwrap_or_else(|e| {
                fail_usage(format!("checkpoint does not fit this scenario: {e}"))
            });
            Box::new(table.into_policy().unwrap_or_else(|e| fail_usage(e)))
        }
        _ => unreachable!("tier validated above"),
    };

    // The fallback tier is static by design: it must keep working when
    // the observation channel (which checkpoint policies lean on) stalls.
    let fallback: Option<Box<dyn UpperPolicy + Sync + Send>> = match fallback_name.as_deref() {
        None => None,
        Some("jsq") => Some(Box::new(FixedRulePolicy::new(jsq_rule(zs, d), "JSQ(d) fallback"))),
        Some("softmin") => {
            let beta: f64 = strict("--fallback-beta").unwrap_or(1.0);
            Some(Box::new(FixedRulePolicy::new(
                softmin_rule(zs, d, beta),
                format!("SOFT({beta}) fallback"),
            )))
        }
        Some(other) => fail_usage(format!("unknown --fallback '{other}' (jsq|softmin)")),
    };

    // Fault plan: the --faults flag wins, a scenario-embedded plan rides
    // along otherwise. Validated (exit 2) before the trace is touched.
    let fault_plan = match arg("--faults") {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail_usage(format!("{path}: {e}")));
            let plan = FaultPlan::from_json(&text)
                .unwrap_or_else(|e| fail_usage(format!("parse {path}: {e}")));
            plan.validate_for(scenario.config.num_queues)
                .unwrap_or_else(|e| fail_usage(format!("fault plan {path}: {e}")));
            Some(plan)
        }
        None => scenario.faults.clone(),
    };

    // The trace is read last: everything above this line is pre-flight.
    // `--trace -` streams JSONL from stdin line by line (parsed lazily,
    // with bounded retry-with-backoff on read errors).
    let source = match arg("--trace").as_deref() {
        Some("-") => {
            let retries: u32 = strict("--ingest-retries").unwrap_or(3);
            let backoff_ms: u64 = strict("--ingest-backoff-ms").unwrap_or(50);
            JobSource::Stream(RefCell::new(LineTraceReader::with_retry(
                Box::new(std::io::BufReader::new(std::io::stdin())),
                retries,
                backoff_ms,
            )))
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail_usage(format!("{path}: {e}")));
            JobSource::Trace(
                parse_trace(&text).unwrap_or_else(|e| fail_usage(format!("{path}: {e}"))),
            )
        }
        None => JobSource::Synthetic,
    };

    let mut engine = EventEngine::new(scenario.config.clone(), job_size);
    if let Some(plan) = fault_plan {
        engine = engine.with_faults(plan);
    }
    let opts =
        ServeOptions { max_jobs, duration, report_every, seed, admission_cap, staleness_threshold };
    eprintln!(
        "serving: M={} B={} d={} Δt={} sizes={:?} policy={} source={} seed={seed}{}{}{}{}",
        scenario.config.num_queues,
        scenario.config.buffer,
        d,
        scenario.config.dt,
        engine.job_size(),
        policy.name(),
        source.label(),
        if inference.is_bit_compat() {
            String::new()
        } else {
            format!(" inference={}", inference.label())
        },
        if engine.faults().is_some() { " faults=on" } else { "" },
        admission_cap.map_or(String::new(), |c| format!(" admission-cap={c}")),
        staleness_threshold.map_or(String::new(), |t| format!(" staleness-threshold={t}")),
    );
    let report = serve_with(
        &engine,
        policy.as_ref(),
        policy.name(),
        fallback.as_deref().map(|p| p as &dyn UpperPolicy),
        &source,
        &opts,
        None,
        |tick| {
            println!("{}", serde_json::to_string(tick).expect("tick serialization cannot fail"));
        },
    )
    .unwrap_or_else(|e| fail(e.to_string()));
    // Compact, so stdout stays strict JSONL: ticks, then this last line.
    println!("{}", serde_json::to_string(&report).expect("report serialization cannot fail"));
    eprintln!(
        "served {} jobs over {:.1} time units ({} intervals): {} completed, {} dropped, \
         {} shed (loss fraction {:.4}), mean sojourn {:.3}, {:.0} jobs/s dispatched",
        report.jobs_arrived,
        report.sim_time,
        report.intervals,
        report.jobs_completed,
        report.jobs_dropped,
        report.jobs_shed,
        report.loss_fraction,
        report.mean_sojourn,
        report.jobs_per_sec,
    );
    if report.fallback_activations > 0 || report.observation_dropped > 0 {
        eprintln!(
            "degradation: {} observation refreshes dropped, watchdog fell back {} time(s) \
             covering {} interval(s)",
            report.observation_dropped, report.fallback_activations, report.fallback_intervals,
        );
    }
    if let Some(out) = arg("--out") {
        if let Some(parent) = std::path::Path::new(&out).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&out, report.to_json())
            .unwrap_or_else(|e| fail(format!("write {out}: {e}")));
        eprintln!("final report written to {out}");
    }
}

/// Runs the tracked perf suite ([`mflb::bench::perf`]) and writes the
/// `BENCH_kernels.json` trajectory file.
fn cmd_bench() {
    let quick = has_flag("--quick");
    let workers: usize = workers_flag(1);
    // Same spelling as eval/simulate/serve so a typo'd value exits 2 here
    // too; the kernel suite itself times every inference tier regardless.
    if inference_flags() != InferenceConfig::default() {
        eprintln!("note: the perf suites time every inference tier; --precision/--fast-math do not narrow them");
    }
    let suite = arg("--suite").unwrap_or_else(|| "kernels".into());
    let default_out = match suite.as_str() {
        "kernels" => "BENCH_kernels.json",
        "graph" => "BENCH_graph.json",
        "serve" => "BENCH_serve.json",
        other => fail_usage(format!("unknown bench suite '{other}' (kernels | graph | serve)")),
    };
    let out = arg("--out").unwrap_or_else(|| default_out.into());
    println!(
        "perf suite '{suite}': {} scale, {workers} worker(s) — pinned seeds, \
         wall-clock + throughput",
        if quick { "quick" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let report = match suite.as_str() {
        "graph" => mflb::bench::perf::run_graph_suite(quick, workers),
        "serve" => mflb::bench::perf::run_serve_suite(quick, workers),
        _ => mflb::bench::perf::run_suite(quick, workers),
    };
    println!(
        "{:<36} {:>8} {:>12} {:>14} {:>12} {:>9}",
        "benchmark", "iters", "per-op", "throughput", "baseline", "speedup"
    );
    for e in &report.entries {
        let (tp, unit) = human_rate(e.throughput, &e.unit);
        println!(
            "{:<36} {:>8} {:>10.1}us {:>9.2} {unit:<4} {:>10} {:>9}",
            e.name,
            e.iters,
            e.per_op_us,
            tp,
            e.baseline_per_op_us.map_or("-".into(), |b| format!("{b:.1}us")),
            e.speedup.map_or("-".into(), |s| format!("{s:.2}x")),
        );
    }
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| fail(format!("write {out}: {e}")));
    println!("suite finished in {:.1}s; JSON written to {out}", t0.elapsed().as_secs_f64());
}

/// Validates one or more scenario spec files (the CI scenario-corpus
/// gate): parse, semantic validation and a full engine build for each.
/// Exit 0 iff every file passes; any failure is reported per file and
/// turns the run into exit 1.
fn cmd_validate() {
    let files: Vec<String> = std::env::args().skip(2).filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("usage: mflb validate <scenario.json> [more.json ...]");
        std::process::exit(2);
    }
    // Above this many queues a full engine build materializes a
    // multi-megabyte CSR topology per file; semantic validation
    // (`Scenario::validate`, which includes the topology checks) already
    // catches everything a build would, so huge specs are validated
    // without materializing the graph.
    const BUILD_MAX_QUEUES: usize = 200_000;
    let mut failures = 0usize;
    for path in &files {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("read: {e}"))
            .and_then(|text| Scenario::from_json(&text).map_err(|e| format!("parse: {e}")))
            .and_then(|scenario| {
                if scenario.config.num_queues > BUILD_MAX_QUEUES {
                    scenario.validate().map_err(|e| format!("validate: {e}"))?;
                    Ok((scenario, false))
                } else {
                    scenario.build().map_err(|e| format!("build: {e}"))?;
                    Ok((scenario, true))
                }
            });
        match verdict {
            Ok((scenario, built)) => {
                println!(
                    "OK    {path} (engine={}, M={}, N={}, Δt={}{})",
                    engine_slug(&scenario.engine),
                    scenario.config.num_queues,
                    scenario.config.num_clients,
                    scenario.config.dt,
                    if built { "" } else { "; topology checked without materializing" }
                );
            }
            Err(e) => {
                eprintln!("FAIL  {path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("error: {failures} of {} scenario file(s) failed validation", files.len());
        std::process::exit(1);
    }
    println!("{} scenario file(s) valid", files.len());
}

/// Diffs a fresh perf report against the committed baseline and gates on
/// same-machine kernel speedup ratios (the CI perf-smoke gate). Prints
/// the markdown table on stdout (CI pipes it into
/// `$GITHUB_STEP_SUMMARY`); exits 1 when any tracked kernel regressed
/// past `--max-ratio` (default 1.3).
fn cmd_bench_diff() {
    use mflb::bench::perf::{compare_reports, BenchReport};
    let baseline_path = arg("--baseline").unwrap_or_else(|| "BENCH_kernels.json".into());
    let fresh_path =
        arg("--fresh").unwrap_or_else(|| fail("bench-diff needs --fresh <report.json>"));
    let max_ratio: f64 = parse("--max-ratio", 1.3);
    let load = |path: &str| -> BenchReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        BenchReport::from_json(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
    };
    let diff = compare_reports(&load(&baseline_path), &load(&fresh_path), max_ratio);
    println!("{}", diff.to_markdown());
    let regressions = diff.regressions();
    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!(
                "error: kernel `{}` lost {:.2}x of its same-machine margin \
                 (baseline {:.2}x -> fresh {:.2}x, gate {max_ratio}x)",
                r.name,
                r.ratio.unwrap_or(f64::NAN),
                r.baseline_speedup.unwrap_or(f64::NAN),
                r.fresh_speedup.unwrap_or(f64::NAN),
            );
        }
        std::process::exit(1);
    }
}

/// Scales a rate into k/M/G for the table (`(value, unit)`).
fn human_rate(rate: f64, unit: &str) -> (f64, String) {
    if rate >= 1e9 {
        (rate / 1e9, format!("G{unit}"))
    } else if rate >= 1e6 {
        (rate / 1e6, format!("M{unit}"))
    } else if rate >= 1e3 {
        (rate / 1e3, format!("k{unit}"))
    } else {
        (rate, unit.to_string())
    }
}

fn cmd_fit_mmpp() {
    use mflb::queue::fit_mmpp;
    let levels: usize = parse("--levels", 2);
    let trace: Vec<f64> = match arg("--trace") {
        Some(path) => {
            let raw = std::fs::read_to_string(&path).expect("read trace file");
            raw.split(|c: char| c.is_whitespace() || c == ',')
                .filter(|t| !t.is_empty())
                .map(|t| t.parse().expect("trace entries must be numbers"))
                .collect()
        }
        None => {
            // Demo: sample the paper's process so the round-trip is visible.
            println!("no --trace <file> given; fitting a demo trace sampled from the paper's MMPP");
            let mut rng = StdRng::seed_from_u64(parse("--seed", 1));
            let process = mflb::queue::ArrivalProcess::paper_default();
            let mut level = process.sample_initial(&mut rng);
            (0..5_000)
                .map(|_| {
                    let r = process.level_rate(level);
                    level = process.step(level, &mut rng);
                    r
                })
                .collect()
        }
    };
    let fit = fit_mmpp(&trace, levels);
    println!(
        "fitted {levels}-level MMPP from {} samples ({} Lloyd iterations, distortion {:.3e}):",
        trace.len(),
        fit.iterations,
        fit.distortion
    );
    for l in 0..levels {
        println!(
            "  level {l}: rate {:.4}, kernel row {:?}",
            fit.process.level_rate(l),
            fit.process.kernel_row(l).iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>()
        );
    }
    println!(
        "  stationary occupancy: {:?}, mean rate {:.4}",
        fit.process.stationary().iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>(),
        fit.process.mean_rate()
    );
    println!("use it via SystemConfig::paper().with_arrivals(<the fit>) in library code.");
}

/// The usage synopsis, listing every subcommand.
fn usage() -> String {
    [
        "mflb — delayed-information load balancing (ICPP '22 reproduction)",
        "",
        "usage: mflb <command> [flags]",
        "",
        "commands:",
        "  train        train a PPO policy for a scenario -> versioned checkpoint + curve JSON",
        "  eval         evaluate a checkpoint vs JSQ/RND/softmin on its finite system -> JSON table",
        "               (--oracle adds an exact-DP row + per-policy optimality-gap column;",
        "                --max-gap <pct> gates the learned gap, exit 1 on breach)",
        "  distill      project a checkpoint onto a tabular lattice policy via the DP oracle",
        "               (--checkpoint <path> [--grid G] [--slack f] [--out <json>])",
        "  simulate     run a finite-system Monte-Carlo evaluation",
        "               (--record-trace <out.jsonl> instead records one synthetic serve run",
        "                as a replayable job trace; needs an event-engine scenario)",
        "  meanfield    evaluate a policy in the limiting mean-field MDP",
        "  compare      JSQ vs RND vs tuned softmin on one configuration",
        "  tune-beta    find the optimal softmin temperature for a Δt",
        "  dp-solve     solve the lattice DP (certified optimum), optionally --out <json>",
        "  scv-compare  phase-type service: mean-field vs finite at a given --scv",
        "  fit-mmpp     estimate an L-level MMPP from a rate trace (--trace <file>, --levels L)",
        "  serve        online dispatcher on the continuous-time event engine: jobs from a",
        "               synthetic generator or a replayed JSONL trace, routed by --policy",
        "               (defaults to checkpoint when --checkpoint is given, else jsq)",
        "               under delayed observations; JSON tick lines + final report on stdout",
        "               (--trace <jsonl>|- (- = stream stdin; --ingest-retries n",
        "                --ingest-backoff-ms t) --max-jobs <n> --duration <t> --report-every <k>",
        "                --seed <s> --out <json>; usage errors exit 2 before the trace is read)",
        "               graceful degradation: --admission-cap <jobs> sheds load above the cap,",
        "               --staleness-threshold <k> --fallback jsq|softmin [--fallback-beta f]",
        "               degrades to the static tier when observations go stale (hysteresis)",
        "  bench        run a tracked perf suite -> BENCH_<suite>.json (--quick for CI scale;",
        "               --suite kernels|graph|serve — graph covers sparse rates, sharded",
        "               epochs, CSR builds at up to 10^6 queues; serve tracks job-level",
        "               dispatch throughput)",
        "  bench-diff   gate a fresh perf report against the committed baseline",
        "               (--baseline <json> --fresh <json> [--max-ratio 1.3])",
        "  validate     validate scenario spec files (exit 1 on any invalid file)",
        "  help         print this synopsis",
        "",
        "scenario selection (train / eval / simulate):",
        "  --scenario <file.json>        a spec from examples/scenarios/, or",
        "  --engine aggregate|perclient|staggered|ph|joblevel|graph|event",
        "           [--cohorts k] [--scv f]",
        "           [--topology ring|torus|random|full --radius r --degree g --graph-seed s]",
        "           [--job-size exp|pareto|bpareto --job-rate r --job-shape a --job-scale x",
        "            --job-lo l --job-hi h] (job-size law for --engine event)",
        "",
        "fault injection (train / eval / simulate / serve):",
        "  --faults <plan.json>          deterministic fault plan (crashes, stragglers,",
        "                                observation drops, overload bursts); also embeddable",
        "                                as a \"faults\" key in scenario JSON. Same seed =>",
        "                                bit-identical faulted runs; malformed plans exit 2",
        "",
        "common flags: --dt <f> --m <int> --n <int> --buffer <int> --d <int>",
        "              --policy jsq|rnd|softmin|checkpoint|distilled [--beta f] [--checkpoint path]",
        "              --precision f64|f32 [--fast-math] (neural inference tier for",
        "              eval/simulate/serve/bench: f32 converts checkpoint weights at load,",
        "              --fast-math swaps libm tanh for the vectorizable rational approximation;",
        "              the f64 default reproduces training bit for bit)",
        "              --oracle [--oracle-grid G] [--oracle-sweeps n] [--oracle-cache dir|none]",
        "              [--max-gap <pct>] (DP-oracle certification on eval)",
        "              --runs <int> --episodes <int> --seed <int> --grid <int> --scv <f>",
        "              --scale quick|paper --iters <int> --out <path>",
        "              --workers <int> (worker threads for train/eval/bench fan-outs;",
        "              --threads is an alias — pin it on fixed-core CI runners)",
    ]
    .join("\n")
}

fn main() {
    let cmd = std::env::args().nth(1);
    match cmd.as_deref() {
        Some("train") => cmd_train(),
        Some("eval") => cmd_eval(),
        Some("distill") => cmd_distill(),
        Some("simulate") => cmd_simulate(),
        Some("meanfield") => cmd_meanfield(),
        Some("compare") => cmd_compare(),
        Some("tune-beta") => cmd_tune_beta(),
        Some("dp-solve") => cmd_dp_solve(),
        Some("scv-compare") => cmd_scv_compare(),
        Some("fit-mmpp") => cmd_fit_mmpp(),
        Some("serve") => cmd_serve(),
        Some("bench") => cmd_bench(),
        Some("bench-diff") => cmd_bench_diff(),
        Some("validate") => cmd_validate(),
        Some("help") | Some("--help") | Some("-h") => println!("{}", usage()),
        unknown => {
            // No subcommand or an unrecognized one: synopsis on stderr,
            // exit 2 (usage error), so scripts cannot mistake it for a run.
            if let Some(u) = unknown {
                eprintln!("error: unknown command '{u}'\n");
            }
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

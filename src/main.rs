//! `mflb` — command-line front end for the mean-field load-balancing
//! library.
//!
//! ```text
//! mflb simulate --dt 5 --m 100 --policy jsq        # finite-system episode
//! mflb meanfield --dt 5 --policy softmin --beta 2  # limiting-model episode
//! mflb compare --dt 5 --m 100                      # JSQ vs RND vs softmin
//! mflb tune-beta --dt 5                            # optimal softmin(β*)
//! mflb dp-solve --dt 5 --grid 8 --out dp.json      # certified lattice optimum
//! mflb scv-compare --dt 5 --scv 4                  # phase-type service check
//! ```
//!
//! The heavy experiment pipeline lives in `mflb-bench` (one binary per
//! paper artifact); this CLI is the interactive, single-command surface a
//! downstream operator uses to poke at a configuration.

use mflb::core::mdp::{FixedRulePolicy, UpperPolicy};
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{jsq_rule, optimize_beta, rnd_rule, softmin_rule, NeuralUpperPolicy};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn parse<T: std::str::FromStr>(flag: &str, default: T) -> T {
    arg(flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_config() -> SystemConfig {
    let dt: f64 = parse("--dt", 5.0);
    let m: usize = parse("--m", 100);
    let n: u64 = parse("--n", (m as u64) * (m as u64));
    let b: usize = parse("--buffer", 5);
    let d: usize = parse("--d", 2);
    SystemConfig::paper().with_dt(dt).with_buffer(b).with_d(d).with_size(n, m)
}

fn build_policy(config: &SystemConfig) -> Box<dyn UpperPolicy + Sync + Send> {
    let name = arg("--policy").unwrap_or_else(|| "jsq".into());
    let zs = config.num_states();
    match name.as_str() {
        "jsq" => Box::new(FixedRulePolicy::new(jsq_rule(zs, config.d), "JSQ(d)")),
        "rnd" => Box::new(FixedRulePolicy::new(rnd_rule(zs, config.d), "RND")),
        "softmin" => {
            let beta: f64 = parse("--beta", 1.0);
            Box::new(FixedRulePolicy::new(
                softmin_rule(zs, config.d, beta),
                format!("SOFT({beta})"),
            ))
        }
        "checkpoint" => {
            let path = arg("--checkpoint").expect("--checkpoint <path> required");
            Box::new(NeuralUpperPolicy::load(&path).expect("load checkpoint"))
        }
        other => {
            eprintln!("unknown policy '{other}' (jsq|rnd|softmin|checkpoint)");
            std::process::exit(2);
        }
    }
}

fn cmd_simulate() {
    let config = build_config();
    let policy = build_policy(&config);
    let runs: usize = parse("--runs", 20);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let engine = AggregateEngine::new(config.clone());
    let mc = monte_carlo(&engine, policy.as_ref(), horizon, runs, seed, 0);
    println!(
        "finite system N={} M={} Δt={} Te={horizon} policy={}",
        config.num_clients,
        config.num_queues,
        config.dt,
        policy.name()
    );
    println!("drops/queue over episode: {:.3} ± {:.3} ({} runs)", mc.mean(), mc.ci95(), runs);
}

fn cmd_meanfield() {
    let config = build_config();
    let policy = build_policy(&config);
    let episodes: usize = parse("--episodes", 100);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let eval = mdp.evaluate(policy.as_ref(), horizon, episodes, &mut rng);
    println!("mean-field model Δt={} Te={horizon} policy={}", config.dt, policy.name());
    println!(
        "expected drops/queue over episode: {:.3} ± {:.3} ({episodes} episodes)",
        -eval.mean(),
        eval.ci95_half_width()
    );
}

fn cmd_compare() {
    let config = build_config();
    let runs: usize = parse("--runs", 20);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let engine = AggregateEngine::new(config.clone());
    let zs = config.num_states();
    println!(
        "N={} M={} Δt={} Te={horizon} ({} runs each)",
        config.num_clients, config.num_queues, config.dt, runs
    );
    let beta = optimize_beta(&config, horizon.min(100), 6, seed).beta;
    let policies: Vec<(String, Box<dyn UpperPolicy + Sync + Send>)> = vec![
        ("JSQ(2)".into(), Box::new(FixedRulePolicy::new(jsq_rule(zs, config.d), "JSQ"))),
        ("RND".into(), Box::new(FixedRulePolicy::new(rnd_rule(zs, config.d), "RND"))),
        (
            format!("SOFT(β*={beta:.2})"),
            Box::new(FixedRulePolicy::new(softmin_rule(zs, config.d, beta), "SOFT")),
        ),
    ];
    for (name, p) in &policies {
        let mc = monte_carlo(&engine, p.as_ref(), horizon, runs, seed, 0);
        println!("  {name:<16} {:8.3} ± {:.3}", mc.mean(), mc.ci95());
    }
}

fn cmd_tune_beta() {
    let config = build_config();
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len().min(150);
    let res = optimize_beta(&config, horizon, 10, seed);
    println!("Δt={}: β* = {:.3}  (mean-field return {:.3})", config.dt, res.beta, res.value);
    println!("trace (β → return):");
    let mut trace = res.trace.clone();
    trace.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (b, v) in trace.iter().take(24) {
        println!("  {b:>8.3} -> {v:>9.3}");
    }
}

fn cmd_dp_solve() {
    use mflb::dp::{ActionLibrary, DpConfig, DpSolution};
    let config = build_config();
    let grid: usize = parse("--grid", 8);
    let zs = config.num_states();
    let t0 = std::time::Instant::now();
    let dp_cfg = DpConfig { grid_resolution: grid, tol: 1e-6, max_sweeps: 4000, threads: 0 };
    let sol = DpSolution::solve(&config, ActionLibrary::softmin_default(zs, config.d), &dp_cfg);
    println!(
        "solved Δt={} B={} on a G={grid} lattice ({} states x {} levels): {} sweeps, {:.1}s",
        config.dt,
        config.buffer,
        sol.grid().num_points(),
        config.arrivals.num_levels(),
        sol.sweeps,
        t0.elapsed().as_secs_f64()
    );
    let nu0 = mflb::core::StateDist::all_empty(config.buffer);
    for l in 0..config.arrivals.num_levels() {
        println!(
            "  V(ν₀, λ-level {l}) = {:.3}, greedy action: {}",
            sol.value(&nu0, l),
            sol.actions().name(sol.greedy_action(&nu0, l))
        );
    }
    if let Some(path) = arg("--out") {
        sol.save_json(&path).expect("write DP checkpoint");
        println!("checkpoint written to {path}");
    }

    // Quick deployment check against the baselines in the limiting model.
    let mdp = MeanFieldMdp::new(config.clone());
    let horizon = config.eval_episode_len().min(120);
    let mut rng = StdRng::seed_from_u64(parse("--seed", 1));
    let policy = sol.into_policy();
    let v_dp = mdp.evaluate(&policy, horizon, 24, &mut rng).mean();
    let jsq = FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ");
    let v_jsq = mdp.evaluate(&jsq, horizon, 24, &mut rng).mean();
    println!("mean-field return over {horizon} epochs: DP {v_dp:.2} vs JSQ(d) {v_jsq:.2}");
}

fn cmd_scv_compare() {
    use mflb::core::PhMeanFieldMdp;
    use mflb::queue::PhaseType;
    use mflb::sim::{monte_carlo, PhAggregateEngine};
    let config = build_config();
    let scv: f64 = parse("--scv", 2.0);
    let runs: usize = parse("--runs", 16);
    let seed: u64 = parse("--seed", 1);
    let horizon = config.eval_episode_len();
    let service = PhaseType::fit_mean_scv(1.0 / config.service_rate, scv);
    println!(
        "service: mean {:.3}, SCV {:.3}, {} phases (two-moment PH fit)",
        service.mean(),
        service.scv(),
        service.num_phases()
    );
    let policy = build_policy(&config);

    let mdp = PhMeanFieldMdp::new(config.clone(), service.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mf = mflb::linalg::stats::Summary::new();
    for _ in 0..24 {
        mf.push(-mdp.rollout(policy.as_ref(), horizon, &mut rng).total_return);
    }
    let engine = PhAggregateEngine::new(config.clone(), service);
    let fin = monte_carlo(&engine, policy.as_ref(), horizon, runs, seed, 0).drops;
    println!(
        "policy {} at Δt={} Te={horizon}: mean-field drops {:.3} ± {:.3}, finite (M={}) {:.3} ± {:.3}",
        policy.name(),
        config.dt,
        mf.mean(),
        mf.ci95_half_width(),
        config.num_queues,
        fin.mean(),
        fin.ci95_half_width()
    );
}

fn cmd_fit_mmpp() {
    use mflb::queue::fit_mmpp;
    let levels: usize = parse("--levels", 2);
    let trace: Vec<f64> = match arg("--trace") {
        Some(path) => {
            let raw = std::fs::read_to_string(&path).expect("read trace file");
            raw.split(|c: char| c.is_whitespace() || c == ',')
                .filter(|t| !t.is_empty())
                .map(|t| t.parse().expect("trace entries must be numbers"))
                .collect()
        }
        None => {
            // Demo: sample the paper's process so the round-trip is visible.
            println!("no --trace <file> given; fitting a demo trace sampled from the paper's MMPP");
            let mut rng = StdRng::seed_from_u64(parse("--seed", 1));
            let process = mflb::queue::ArrivalProcess::paper_default();
            let mut level = process.sample_initial(&mut rng);
            (0..5_000)
                .map(|_| {
                    let r = process.level_rate(level);
                    level = process.step(level, &mut rng);
                    r
                })
                .collect()
        }
    };
    let fit = fit_mmpp(&trace, levels);
    println!(
        "fitted {levels}-level MMPP from {} samples ({} Lloyd iterations, distortion {:.3e}):",
        trace.len(),
        fit.iterations,
        fit.distortion
    );
    for l in 0..levels {
        println!(
            "  level {l}: rate {:.4}, kernel row {:?}",
            fit.process.level_rate(l),
            fit.process.kernel_row(l).iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>()
        );
    }
    println!(
        "  stationary occupancy: {:?}, mean rate {:.4}",
        fit.process.stationary().iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>(),
        fit.process.mean_rate()
    );
    println!("use it via SystemConfig::paper().with_arrivals(<the fit>) in library code.");
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "help".into());
    match cmd.as_str() {
        "simulate" => cmd_simulate(),
        "meanfield" => cmd_meanfield(),
        "compare" => cmd_compare(),
        "tune-beta" => cmd_tune_beta(),
        "dp-solve" => cmd_dp_solve(),
        "scv-compare" => cmd_scv_compare(),
        "fit-mmpp" => cmd_fit_mmpp(),
        _ => {
            println!("mflb — delayed-information load balancing (ICPP '22 reproduction)");
            println!();
            println!("commands:");
            println!("  simulate     run a finite-system Monte-Carlo evaluation");
            println!("  meanfield    evaluate a policy in the limiting mean-field MDP");
            println!("  compare      JSQ vs RND vs tuned softmin on one configuration");
            println!("  tune-beta    find the optimal softmin temperature for a Δt");
            println!(
                "  dp-solve     solve the lattice DP (certified optimum), optionally --out <json>"
            );
            println!("  scv-compare  phase-type service: mean-field vs finite at a given --scv");
            println!("  fit-mmpp     estimate an L-level MMPP from a rate trace (--trace <file>, --levels L)");
            println!();
            println!("common flags: --dt <f> --m <int> --n <int> --buffer <int> --d <int>");
            println!(
                "              --policy jsq|rnd|softmin|checkpoint [--beta f] [--checkpoint path]"
            );
            println!(
                "              --runs <int> --episodes <int> --seed <int> --grid <int> --scv <f>"
            );
        }
    }
}

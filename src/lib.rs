//! # meanfield-lb (`mflb`)
//!
//! Umbrella crate for the reproduction of **"Learning Mean-Field Control for
//! Delayed Information Load Balancing in Large Queuing Systems"** (Tahir,
//! Cui & Koeppl, ICPP '22). It re-exports the public API of every workspace
//! crate so downstream users can depend on a single crate:
//!
//! * [`linalg`] — dense matrices, matrix exponentials, statistics,
//! * [`queue`] — CTMC queueing substrate, Gillespie simulation, samplers,
//! * [`core`] — the mean-field control model and its exactly-discretized MDP,
//! * [`policy`] — JSQ(d)/SED(d)/RND/softmin/learned load-balancing policies,
//! * [`sim`] — the finite N-client M-queue simulator (Algorithm 1),
//! * [`nn`] — the minimal neural-network substrate,
//! * [`rl`] — hand-rolled PPO, REINFORCE and CEM,
//! * [`dp`] — exact value iteration on the discretized MFC MDP,
//! * [`bench`](mod@bench) — the paper-artifact harness and the tracked
//!   perf suite behind `mflb bench`.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![deny(rustdoc::broken_intra_doc_links)]

pub use mflb_bench as bench;
pub use mflb_core as core;
pub use mflb_dp as dp;
pub use mflb_linalg as linalg;
pub use mflb_nn as nn;
pub use mflb_policy as policy;
pub use mflb_queue as queue;
pub use mflb_rl as rl;
pub use mflb_sim as sim;

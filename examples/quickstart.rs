//! Quickstart: five minutes with the meanfield-lb API.
//!
//! Builds the paper's system (Table 1), compares JSQ(2), RND and a
//! softmin policy in (a) the limiting mean-field control MDP and (b) a
//! finite system with M = 100 queues and N = 10 000 clients, under a
//! synchronization delay of Δt = 5.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule, softmin_rule};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's Table-1 system at synchronization delay Δt = 5 with
    // M = 100 queues and N = M² clients.
    let config = SystemConfig::paper().with_dt(5.0).with_m_squared(100);
    let horizon = config.eval_episode_len(); // ≈ 500 time units
    println!(
        "system: N = {}, M = {}, Δt = {}, Te = {horizon} epochs",
        config.num_clients, config.num_queues, config.dt
    );

    // Three policies, all expressed as decision rules h : Z^d -> P(U).
    let policies = [
        FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ(2)"),
        FixedRulePolicy::new(rnd_rule(config.num_states(), config.d), "RND"),
        FixedRulePolicy::new(softmin_rule(config.num_states(), config.d, 0.8), "SOFT(0.8)"),
    ];

    // (a) The limiting mean-field control MDP: deterministic ν-dynamics,
    //     random arrival modulation.
    println!("\n-- mean-field (M -> infinity) expected drops over the episode --");
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(1);
    for p in &policies {
        let eval = mdp.evaluate(p, horizon, 100, &mut rng);
        println!("  {:<10} {:6.2} ± {:.2}", p.rule_name(), -eval.mean(), eval.ci95_half_width());
    }

    // (b) The finite system (Algorithm 1), exact aggregated engine.
    println!("\n-- finite system (N = {}, M = {}) --", config.num_clients, config.num_queues);
    let engine = AggregateEngine::new(config.clone());
    for p in &policies {
        let mc = monte_carlo(&engine, p, horizon, 20, 7, 0);
        println!("  {:<10} {:6.2} ± {:.2}", p.rule_name(), mc.mean(), mc.ci95());
    }

    println!(
        "\nAt Δt = 5 the queue information is stale: plain JSQ(2) herds onto \
         the momentarily-shortest queues, so the softened policy already \
         closes most of the gap — and a trained MF policy (see \
         `cargo run -p mflb-bench --release --bin fig3_training`) does better."
    );
}

/// Small helper so the loop can print a name without borrowing issues.
trait RuleName {
    fn rule_name(&self) -> &str;
}

impl RuleName for FixedRulePolicy {
    fn rule_name(&self) -> &str {
        use mflb::core::mdp::UpperPolicy;
        self.name()
    }
}

//! A certified optimum for the delayed load-balancing MDP — exact value
//! iteration on the discretized mean-field control problem, deployed on
//! the finite system.
//!
//! The paper learns its policy with PPO because the MFC MDP has
//! continuous states and actions. For the Table-1 buffer size the state
//! space is low-dimensional enough to *solve*: this example discretizes
//! `P(Z)` on a simplex lattice, runs value iteration over the softmin
//! decision-rule family, and deploys the greedy policy (one-step
//! lookahead with interpolated values) on a finite system — a yardstick
//! the learned policies can be measured against.
//!
//! ```text
//! cargo run --release --example certified_optimum
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::dp::{ActionLibrary, DpConfig, DpSolution};
use mflb::policy::{jsq_rule, rnd_rule};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = SystemConfig::paper().with_dt(5.0).with_m_squared(100);
    let zs = config.num_states();
    let horizon = config.eval_episode_len();

    // Solve the lattice DP: G = 8 gives C(13,5) = 1287 lattice points over
    // P({0..5}); the softmin library spans MF-RND .. MF-JSQ(2).
    println!("solving the discretized MFC MDP (B = 5, G = 8, 10 softmin actions) …");
    let t0 = std::time::Instant::now();
    let dp_cfg = DpConfig { grid_resolution: 8, tol: 1e-6, max_sweeps: 4000, threads: 0 };
    let sol = DpSolution::solve(&config, ActionLibrary::softmin_default(zs, config.d), &dp_cfg);
    println!(
        "  converged in {} sweeps ({:.1}s), residual {:.1e}, {} lattice states",
        sol.sweeps,
        t0.elapsed().as_secs_f64(),
        sol.residual,
        sol.grid().num_points()
    );

    // Which action does the optimum play where? Probe a few states.
    println!("\ngreedy action by state (library index 0 = RND … 9 ≈ JSQ):");
    use mflb::core::StateDist;
    for (label, nu) in [
        ("all empty", StateDist::all_empty(5)),
        ("uniform", StateDist::uniform(5)),
        ("congested", StateDist::new(vec![0.05, 0.05, 0.1, 0.2, 0.3, 0.3])),
    ] {
        for lam in 0..2 {
            let a = sol.greedy_action(&nu, lam);
            println!(
                "  ν = {label:<9} λ-level {lam}: plays {:<14} V = {:.2}",
                sol.actions().name(a),
                sol.value(&nu, lam)
            );
        }
    }

    // The same solve through the scenario-level oracle bridge — the code
    // path behind `mflb eval --oracle` and `mflb distill`. The bridge
    // classifies the scenario (exact vs mean-matched reference), caches
    // the solution under a content key of the MDP-relevant fields (re-run
    // this example and it loads instead of solving), and can re-verify
    // convergence from the model.
    {
        use mflb::rl::{solve_oracle, OracleConfig};
        use mflb::sim::{EngineSpec, Scenario};
        let scenario = Scenario::new(config.clone(), EngineSpec::Aggregate);
        let oracle_cfg = OracleConfig {
            cache_dir: Some(std::path::PathBuf::from("target/oracle")),
            ..OracleConfig::default()
        };
        let oracle = solve_oracle(&scenario, &oracle_cfg).expect("oracle solve");
        println!(
            "\noracle bridge: {} for this scenario, cache {} (key {}), \
             max Bellman residual {:.1e} over every 13th lattice state",
            if oracle.exactness.is_exact() { "exact certificate" } else { "reference" },
            if oracle.cache_hit { "hit" } else { "miss -> solved + cached" },
            oracle.key,
            oracle.max_bellman_residual(13),
        );
    }

    let dp_policy = sol.into_policy();

    // Mean-field comparison on common arrival noise.
    let mdp = MeanFieldMdp::new(config.clone());
    let jsq = FixedRulePolicy::new(jsq_rule(zs, config.d), "MF-JSQ(2)");
    let rnd = FixedRulePolicy::new(rnd_rule(zs, config.d), "MF-RND");
    let mut rng = StdRng::seed_from_u64(3);
    println!("\nmean-field episode returns (higher is better, {horizon} epochs):");
    for (name, value) in [
        ("DP", mdp.evaluate(&dp_policy, horizon, 40, &mut rng).mean()),
        ("JSQ(2)", mdp.evaluate(&jsq, horizon, 40, &mut rng).mean()),
        ("RND", mdp.evaluate(&rnd, horizon, 40, &mut rng).mean()),
    ] {
        println!("  {name:<8} {value:8.2}");
    }

    // Finite-system deployment (Algorithm 1 with the DP policy on top).
    println!(
        "\nfinite system (N = {}, M = {}): total drops over ≈500 time units:",
        config.num_clients, config.num_queues
    );
    let engine = AggregateEngine::new(config.clone());
    let results: [(&str, mflb::sim::MonteCarloResult); 3] = [
        ("DP", monte_carlo(&engine, &dp_policy, horizon, 16, 11, 0)),
        ("JSQ(2)", monte_carlo(&engine, &jsq, horizon, 16, 11, 0)),
        ("RND", monte_carlo(&engine, &rnd, horizon, 16, 11, 0)),
    ];
    for (name, mc) in &results {
        println!("  {name:<8} {:6.2} ± {:.2}", mc.mean(), mc.ci95());
    }

    println!(
        "\nReading: the DP policy is the certified optimum over its rule \
         family (up to lattice resolution) — at Δt = 5 it beats both \
         paper baselines, and the finite system inherits the ranking."
    );
}

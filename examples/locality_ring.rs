//! Locality-constrained load balancing on a ring: the graph-topology
//! scenario family end to end.
//!
//! Loads `examples/scenarios/graph_ring.json` (M queues on a cycle, each
//! dispatcher routing within `±radius`), runs the neighborhood-restricted
//! JSQ(2) and RND baselines on the finite system, compares against the
//! same rules on the full mesh, and checks the degree-indexed mean-field
//! approximation against the finite ring.
//!
//! Expected picture: RND is locality-blind (same drops either way),
//! while ring-JSQ keeps pace with mesh-JSQ despite seeing only `k` of
//! `M` queues — each dispatcher's small catchment caps the herd that
//! stale information sends to the globally shortest queues, offsetting
//! the loss of global choice. The degree-indexed mean field tracks the
//! finite ring to leading order (annealed closure: expect a
//! several-percent bias plus finite-`M` effects).
//!
//! ```text
//! cargo run --release --example locality_ring
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{graph_mean_field_step, StateDist, Topology};
use mflb::policy::{jsq_rule, rnd_rule};
use mflb::sim::{monte_carlo, EngineSpec, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scenarios/graph_ring.json");
    let text = std::fs::read_to_string(path).expect("shipped scenario must exist");
    let ring = Scenario::from_json(&text).expect("shipped scenario must parse");
    let config = ring.config.clone();
    let radius = match &ring.engine {
        EngineSpec::Graph { topology: Topology::Ring { radius }, .. } => *radius,
        other => panic!("graph_ring.json must hold a ring topology, got {other:?}"),
    };
    let k = 2 * radius + 1;
    let zs = config.num_states();
    let d = config.d;
    let horizon = config.eval_episode_len();
    let (runs, seed) = (12, 7);

    println!(
        "ring topology: M = {} queues, reach ±{radius} (k = {k} accessible queues), \
         Δt = {}, Te = {horizon}",
        config.num_queues, config.dt
    );

    // The same rule tables serve both topologies: rules rank *sampled
    // observations*, so locality comes entirely from the engine's sampling.
    let jsq = FixedRulePolicy::new(jsq_rule(zs, d), "JSQ(2)");
    let rnd = FixedRulePolicy::new(rnd_rule(zs, d), "RND");
    let mesh = Scenario::new(
        config.clone(),
        EngineSpec::Graph { topology: Topology::FullMesh, shard_size: None },
    );

    println!("\n{:<10} {:>16} {:>16}", "policy", "ring drops/q", "mesh drops/q");
    let mut ring_jsq_mean = 0.0;
    for (label, policy) in [("JSQ(2)", &jsq), ("RND", &rnd)] {
        let on_ring =
            monte_carlo(&ring.build().expect("valid ring"), policy, horizon, runs, seed, 0);
        let on_mesh =
            monte_carlo(&mesh.build().expect("valid mesh"), policy, horizon, runs, seed, 0);
        println!(
            "{label:<10} {:>10.2} ± {:<4.2} {:>10.2} ± {:<4.2}",
            on_ring.mean(),
            on_ring.ci95(),
            on_mesh.mean(),
            on_mesh.ci95()
        );
        if label == "JSQ(2)" {
            ring_jsq_mean = on_ring.mean();
        }
    }

    // Degree-indexed mean-field check: the k-neighborhood annealed closure
    // should land in the same regime as the finite ring's JSQ drops
    // (leading-order prediction; lattice correlations bias it low).
    let mut rng = StdRng::seed_from_u64(seed);
    let episodes = 8;
    let mut mf_total = 0.0;
    let rule = jsq_rule(zs, d);
    for _ in 0..episodes {
        let mut nu = StateDist::new(config.initial_dist.clone());
        let mut level = config.arrivals.sample_initial(&mut rng);
        for _ in 0..horizon {
            let lambda = config.arrivals.level_rate(level);
            let step = graph_mean_field_step(&nu, &rule, lambda, config.service_rate, config.dt, k);
            mf_total += step.expected_drops;
            nu = step.next_dist;
            level = config.arrivals.step(level, &mut rng);
        }
    }
    let mf_drops = mf_total / episodes as f64;
    println!(
        "\ndegree-indexed mean field (k = {k}): {mf_drops:.2} expected drops/queue \
         vs {ring_jsq_mean:.2} finite-ring JSQ"
    );
    println!(
        "relative gap: {:.1}%",
        100.0 * (mf_drops - ring_jsq_mean).abs() / ring_jsq_mean.max(1e-9)
    );
    println!("\nnext: mflb train --scenario examples/scenarios/graph_ring.json --scale quick");
}

//! A three-level "daily load profile" — night / day / peak — showing
//! that nothing in the stack is hard-wired to the paper's two arrival
//! levels: the MMPP, the mean-field MDP, the exact DP and the finite
//! system all take arbitrary finite level sets.
//!
//! The DP solution becomes genuinely *load-adaptive*: it plays sharper
//! rules at night (fresh-ish information over an emptying system) and
//! softer ones at peak (herding is deadliest when everything is full).
//!
//! ```text
//! cargo run --release --example daily_load_profile
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, StateDist, SystemConfig};
use mflb::dp::{ActionLibrary, DpConfig, DpSolution};
use mflb::policy::{jsq_rule, rnd_rule};
use mflb::queue::ArrivalProcess;
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Night 0.4, day 0.75, peak 0.95 jobs per queue per time unit; the
    // kernel cycles night → day → peak → day → night with some jitter.
    let levels = vec![0.95, 0.75, 0.4]; // index 0 = peak, 1 = day, 2 = night
    let kernel = vec![
        vec![0.6, 0.4, 0.0],   // peak: mostly stays, falls to day
        vec![0.25, 0.5, 0.25], // day: drifts either way
        vec![0.0, 0.5, 0.5],   // night: rises to day
    ];
    let initial = vec![0.2, 0.5, 0.3];
    let arrivals = ArrivalProcess::new(levels, kernel, initial);

    let config = SystemConfig::paper().with_dt(5.0).with_m_squared(100).with_arrivals(arrivals);
    let zs = config.num_states();
    let horizon = config.eval_episode_len();
    println!(
        "3-level MMPP: rates {:?}, stationary {:?}",
        config.arrivals.levels(),
        config.arrivals.stationary().iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>()
    );

    // Exact DP over the softmin family — the state space is now
    // P(Z) × {peak, day, night}.
    println!("\nsolving the lattice DP over 3 arrival levels …");
    let dp_cfg = DpConfig { grid_resolution: 8, tol: 1e-6, max_sweeps: 4000, threads: 0 };
    let sol = DpSolution::solve(&config, ActionLibrary::softmin_default(zs, config.d), &dp_cfg);
    println!("  {} lattice states × 3 levels, {} sweeps", sol.grid().num_points(), sol.sweeps);

    println!("\ngreedy rule by arrival level (same congested ν):");
    let nu = StateDist::new(vec![0.1, 0.1, 0.2, 0.2, 0.2, 0.2]);
    for (l, name) in [(0usize, "peak"), (1, "day"), (2, "night")] {
        let a = sol.greedy_action(&nu, l);
        println!(
            "  {name:<6} (λ = {:.2}): plays {:<14} V = {:.2}",
            config.arrivals.level_rate(l),
            sol.actions().name(a),
            sol.value(&nu, l)
        );
    }

    let dp_policy = sol.into_policy();
    let jsq = FixedRulePolicy::new(jsq_rule(zs, config.d), "JSQ(2)");
    let rnd = FixedRulePolicy::new(rnd_rule(zs, config.d), "RND");

    // Mean-field comparison.
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(5);
    println!("\nmean-field drops over ≈500 time units:");
    println!("  DP      {:7.2}", -mdp.evaluate(&dp_policy, horizon, 40, &mut rng).mean());
    println!("  JSQ(2)  {:7.2}", -mdp.evaluate(&jsq, horizon, 40, &mut rng).mean());
    println!("  RND     {:7.2}", -mdp.evaluate(&rnd, horizon, 40, &mut rng).mean());

    // Finite system.
    let engine = AggregateEngine::new(config.clone());
    println!("\nfinite system (N = {}, M = {}) drops:", config.num_clients, config.num_queues);
    let r_dp = monte_carlo(&engine, &dp_policy, horizon, 16, 9, 0);
    let r_jsq = monte_carlo(&engine, &jsq, horizon, 16, 9, 0);
    let r_rnd = monte_carlo(&engine, &rnd, horizon, 16, 9, 0);
    println!("  DP      {:7.2} ± {:.2}", r_dp.mean(), r_dp.ci95());
    println!("  JSQ(2)  {:7.2} ± {:.2}", r_jsq.mean(), r_jsq.ci95());
    println!("  RND     {:7.2} ± {:.2}", r_rnd.mean(), r_rnd.ci95());

    println!(
        "\nReading: with a richer load process the optimal rule depends on \
         *both* the queue distribution and the current load level — the \
         enlarged-state-space machinery handles any finite Λ unchanged."
    );
}

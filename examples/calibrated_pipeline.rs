//! The full calibration pipeline a practitioner would run against a real
//! system, end to end:
//!
//! 1. **measure** — collect a per-epoch arrival-rate trace (here:
//!    synthesized from a hidden ground-truth MMPP the estimator never
//!    sees directly, with measurement noise);
//! 2. **fit** — estimate the Markov-modulated arrival process from the
//!    trace ([`mflb::queue::fit_mmpp`], the paper's "estimated from a
//!    real system" remark);
//! 3. **tune** — optimize the softmin temperature *in the fitted
//!    mean-field model* (no production traffic touched);
//! 4. **deploy** — run the tuned policy on the (ground-truth) finite
//!    system and compare against JSQ(2)/RND.
//!
//! The point: the policy tuned against the *fitted* model performs on
//! the *true* system — model-based calibration survives estimation
//! error.
//!
//! ```text
//! cargo run --release --example calibrated_pipeline
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::SystemConfig;
use mflb::policy::{jsq_rule, optimize_beta, rnd_rule, softmin_rule};
use mflb::queue::{fit_mmpp, ArrivalProcess};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Ground truth (a production system we can only observe). ---
    let truth = ArrivalProcess::new(
        vec![0.92, 0.55],
        vec![vec![0.75, 0.25], vec![0.4, 0.6]],
        vec![0.5, 0.5],
    );
    let true_config =
        SystemConfig::paper().with_dt(5.0).with_m_squared(100).with_arrivals(truth.clone());

    // --- 1. Measure: a noisy rate trace over 2000 epochs. ---
    let mut rng = StdRng::seed_from_u64(7);
    let mut level = truth.sample_initial(&mut rng);
    let trace: Vec<f64> = (0..2_000)
        .map(|_| {
            let noise: f64 = rng.gen_range(-0.04..0.04);
            let r = (truth.level_rate(level) + noise).max(0.0);
            level = truth.step(level, &mut rng);
            r
        })
        .collect();
    println!("measured {} epochs of noisy per-queue arrival rates", trace.len());

    // --- 2. Fit. ---
    let fit = fit_mmpp(&trace, 2);
    println!(
        "fitted MMPP: rates ({:.3}, {:.3}) vs truth (0.920, 0.550); \
         P(h→l) {:.3} vs 0.250; P(l→h) {:.3} vs 0.400",
        fit.process.level_rate(0),
        fit.process.level_rate(1),
        fit.process.kernel_row(0)[1],
        fit.process.kernel_row(1)[0],
    );

    // --- 3. Tune in the fitted mean-field model. ---
    let fitted_config = true_config.clone().with_arrivals(fit.process.clone());
    let horizon = fitted_config.eval_episode_len();
    let res = optimize_beta(&fitted_config, horizon.min(120), 8, 11);
    println!(
        "tuned softmin in the FITTED model: β* = {:.3} (model value {:.2})",
        res.beta, res.value
    );

    // Reference: what we would have tuned with perfect knowledge.
    let res_oracle = optimize_beta(&true_config, horizon.min(120), 8, 11);
    println!("oracle β* on the TRUE model: {:.3}", res_oracle.beta);

    // --- 4. Deploy on the true system. ---
    let zs = true_config.num_states();
    let engine = AggregateEngine::new(true_config.clone());
    let policies = [
        ("SOFT(fitted β*)", softmin_rule(zs, 2, res.beta)),
        ("SOFT(oracle β*)", softmin_rule(zs, 2, res_oracle.beta)),
        ("JSQ(2)", jsq_rule(zs, 2)),
        ("RND", rnd_rule(zs, 2)),
    ];
    println!(
        "\ndrops on the true finite system (N = {}, M = {}, ≈500 time units):",
        true_config.num_clients, true_config.num_queues
    );
    for (name, rule) in policies {
        let policy = FixedRulePolicy::new(rule, name);
        let mc = monte_carlo(&engine, &policy, horizon, 20, 3, 0);
        println!("  {name:<16} {:6.2} ± {:.2}", mc.mean(), mc.ci95());
    }

    println!(
        "\nReading: the fitted-model β* lands within noise of the oracle β*, \
         and both beat JSQ(2)/RND on the true system — estimation error in \
         the arrival process does not break the calibration loop."
    );
}

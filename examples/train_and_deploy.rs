//! Train a mean-field policy with PPO, then deploy it to a finite system —
//! the paper's full offline-training / online-deployment loop (Fig. 2 +
//! Algorithm 1), at toy scale so it finishes in about a minute.
//!
//! ```text
//! cargo run --release --example train_and_deploy
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule, NeuralUpperPolicy};
use mflb::rl::{MfcEnv, PpoConfig, PpoTrainer};
use mflb::sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Short training episodes keep the demo fast; the real experiment uses
    // T = 500 (see `cargo run -p mflb-bench --release --bin fig3_training`).
    let mut config = SystemConfig::paper().with_dt(5.0).with_m_squared(100);
    config.train_episode_len = 100;
    let horizon = config.eval_episode_len();

    // --- offline: PPO in the mean-field control MDP -----------------------
    // Variance-reduced demo settings: the rule fixes the epoch's drops
    // immediately, so a short credit horizon (γ = 0.9) keeps the optimum
    // while making minutes-scale training possible (DESIGN.md §5).
    let ppo = PpoConfig {
        gamma: 0.9,
        gae_lambda: 0.9,
        lr: 1e-3,
        kl_target: 0.02,
        train_batch_size: 3000,
        minibatch_size: 375,
        num_epochs: 10,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        rollout_threads: 4,
        ..PpoConfig::paper()
    };
    let env = MfcEnv::new(config.clone());
    let mut trainer = PpoTrainer::new(&env, ppo, 42);
    let mut rng = StdRng::seed_from_u64(43);
    println!("training PPO on the MFC MDP (toy scale) ...");
    for it in 0..45 {
        let stats = trainer.train_iteration(&mut rng);
        if it % 5 == 0 || it == 44 {
            println!(
                "  iter {:>3}  steps {:>7}  episode return {:>8.2}",
                stats.iteration, stats.total_steps, stats.mean_episode_return
            );
        }
    }
    let learned = NeuralUpperPolicy::new(
        trainer.policy_net().clone(),
        config.num_states(),
        config.d,
        config.arrivals.num_levels(),
    );

    // --- evaluation in the mean-field model --------------------------------
    let mdp = MeanFieldMdp::new(config.clone());
    let jsq = FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ(2)");
    let rnd = FixedRulePolicy::new(rnd_rule(config.num_states(), config.d), "RND");
    println!("\nmean-field expected drops over Te = {horizon} epochs:");
    for (name, value) in [
        ("MF (learned)", -mdp.evaluate(&learned, horizon, 50, &mut rng).mean()),
        ("JSQ(2)", -mdp.evaluate(&jsq, horizon, 50, &mut rng).mean()),
        ("RND", -mdp.evaluate(&rnd, horizon, 50, &mut rng).mean()),
    ] {
        println!("  {name:<13} {value:6.2}");
    }

    // --- online: deploy the SAME policy object to the finite system -------
    println!(
        "\ndeploying to the finite system (N = {}, M = {}):",
        config.num_clients, config.num_queues
    );
    let engine = AggregateEngine::new(config.clone());
    for (name, mc) in [
        ("MF (learned)", monte_carlo(&engine, &learned, horizon, 15, 1, 0)),
        ("JSQ(2)", monte_carlo(&engine, &jsq, horizon, 15, 2, 0)),
        ("RND", monte_carlo(&engine, &rnd, horizon, 15, 3, 0)),
    ] {
        println!("  {name:<13} {:6.2} ± {:.2}", mc.mean(), mc.ci95());
    }

    // --- persistence --------------------------------------------------------
    let path = std::env::temp_dir().join("mflb_quick_policy.json");
    learned.save(&path, config.dt, "train_and_deploy example").unwrap();
    let reloaded = NeuralUpperPolicy::load(&path).unwrap();
    let check = monte_carlo(&engine, &reloaded, horizon, 5, 1, 0);
    println!(
        "\ncheckpoint round-trip via {} (drops {:.2}) — same policy, ready for production.",
        path.display(),
        check.mean()
    );
}

//! Train a mean-field policy with PPO, then deploy it to a finite system —
//! the paper's full offline-training / online-deployment loop (Fig. 2 +
//! Algorithm 1), at toy scale so it finishes in about a minute.
//!
//! This drives the scenario subsystem end to end, exactly like
//! `mflb train` / `mflb eval` do:
//! `Scenario → train_scenario → TrainingCheckpoint → finite-N engines`.
//!
//! ```text
//! cargo run --release --example train_and_deploy
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{MeanFieldMdp, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule};
use mflb::rl::{train_scenario, PpoConfig, TrainingCheckpoint};
use mflb::sim::{monte_carlo, EngineSpec, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Short training episodes keep the demo fast; the real experiment uses
    // T = 500 (see `cargo run -p mflb-bench --release --bin fig3_training`).
    let mut config = SystemConfig::paper().with_dt(5.0).with_m_squared(100);
    config.train_episode_len = 100;
    let horizon = config.eval_episode_len();
    let scenario = Scenario::new(config.clone(), EngineSpec::Aggregate);

    // --- offline: PPO in the mean-field control MDP -----------------------
    // Variance-reduced demo settings: the rule fixes the epoch's drops
    // immediately, so a short credit horizon (γ = 0.9) keeps the optimum
    // while making minutes-scale training possible (DESIGN.md §5).
    let ppo = PpoConfig {
        gamma: 0.9,
        gae_lambda: 0.9,
        lr: 1e-3,
        kl_target: 0.02,
        train_batch_size: 3000,
        minibatch_size: 375,
        num_epochs: 10,
        hidden: vec![32, 32],
        initial_log_std: -0.5,
        rollout_threads: 4,
        ..PpoConfig::paper()
    };
    println!("training PPO on the MFC MDP (toy scale) ...");
    let result = train_scenario(&scenario, ppo, 45, 42, false).expect("training failed");
    for p in result.checkpoint.curve.iter().step_by(5) {
        println!(
            "  iter {:>3}  steps {:>7}  episode return {:>8.2}",
            p.iteration, p.steps, p.mean_return
        );
    }
    let learned = result.policy;

    // --- evaluation in the mean-field model --------------------------------
    let mdp = MeanFieldMdp::new(config.clone());
    let jsq = FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ(2)");
    let rnd = FixedRulePolicy::new(rnd_rule(config.num_states(), config.d), "RND");
    let mut rng = StdRng::seed_from_u64(43);
    println!("\nmean-field expected drops over Te = {horizon} epochs:");
    for (name, value) in [
        ("MF (learned)", -mdp.evaluate(&learned, horizon, 50, &mut rng).mean()),
        ("JSQ(2)", -mdp.evaluate(&jsq, horizon, 50, &mut rng).mean()),
        ("RND", -mdp.evaluate(&rnd, horizon, 50, &mut rng).mean()),
    ] {
        println!("  {name:<13} {value:6.2}");
    }

    // --- online: deploy the SAME policy object to the finite system -------
    println!(
        "\ndeploying to the finite system (N = {}, M = {}):",
        config.num_clients, config.num_queues
    );
    let engine = scenario.build().expect("valid scenario");
    for (name, mc) in [
        ("MF (learned)", monte_carlo(&engine, &learned, horizon, 15, 1, 0)),
        ("JSQ(2)", monte_carlo(&engine, &jsq, horizon, 15, 2, 0)),
        ("RND", monte_carlo(&engine, &rnd, horizon, 15, 3, 0)),
    ] {
        println!("  {name:<13} {:6.2} ± {:.2}", mc.mean(), mc.ci95());
    }

    // --- persistence: the versioned checkpoint -----------------------------
    let path = std::env::temp_dir().join("mflb_quick_policy.json");
    result.checkpoint.save(&path).unwrap();
    let reloaded = TrainingCheckpoint::load(&path).unwrap();
    let check = monte_carlo(&engine, &reloaded.into_policy().unwrap(), horizon, 5, 1, 0);
    println!(
        "\ncheckpoint round-trip via {} (format v{}, drops {:.2}) — same policy, ready for production.",
        path.display(),
        reloaded.format_version,
        check.mean()
    );
}

//! Online serving with the continuous-time event engine: the library
//! side of `mflb serve`.
//!
//! Loads `examples/scenarios/event_pareto.json` (heavy-tailed
//! bounded-Pareto job sizes on the job-level event engine), then runs
//! the dispatcher loop twice under sampled-and-delayed JSQ(2):
//!
//! 1. replaying the shipped ten-job JSONL trace
//!    (`examples/traces/ten_jobs.jsonl`) to completion, and
//! 2. ingesting a short synthetic MMPP-modulated stream, printing a
//!    progress tick every sync interval.
//!
//! Both runs are deterministic functions of `(engine, policy, source,
//! seed)` — re-running this example reproduces every statistic bit for
//! bit (only the wall-clock throughput fields change).
//!
//! ```text
//! cargo run --release --example serve_stream
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::policy::jsq_rule;
use mflb::sim::{
    parse_trace, serve, Engine, EngineSpec, EventEngine, JobSource, Scenario, ServeOptions,
};

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scenarios/event_pareto.json");
    let text = std::fs::read_to_string(path).expect("shipped scenario must exist");
    let scenario = Scenario::from_json(&text).expect("shipped scenario must parse");
    let job_size = match &scenario.engine {
        EngineSpec::Event { job_size } => job_size.clone(),
        other => panic!("event_pareto.json must hold an event engine spec, got {other:?}"),
    };
    let config = scenario.config.clone();
    println!(
        "event engine: M = {} queues, N = {} clients, Δt = {}, job sizes {job_size:?} \
         (mean {:.3})",
        config.num_queues,
        config.num_clients,
        config.dt,
        job_size.mean()
    );
    let engine = EventEngine::new(config, job_size);
    let policy = FixedRulePolicy::new(jsq_rule(engine.config().num_states(), 2), "JSQ(2)");

    // 1) Replay the shipped trace: ten jobs with hand-written arrival
    //    times and sizes, drained to completion.
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/traces/ten_jobs.jsonl");
    let trace_text = std::fs::read_to_string(trace_path).expect("shipped trace must exist");
    let jobs = parse_trace(&trace_text).expect("shipped trace must parse");
    println!("\nreplaying {} jobs from {trace_path}", jobs.len());
    let opts = ServeOptions { seed: 1, ..Default::default() };
    let report = serve(&engine, &policy, "JSQ(2)", &JobSource::Trace(jobs), &opts, |_| {})
        .expect("trace replay must succeed");
    println!(
        "  drained in {:.2} time units: {} completed, {} dropped, mean sojourn {:.3}",
        report.sim_time, report.jobs_completed, report.jobs_dropped, report.mean_sojourn
    );

    // 2) Synthetic stream: the engine's own MMPP-modulated Poisson
    //    arrivals, hard-stopped after a few sync intervals, with a
    //    progress tick per interval.
    println!("\nsynthetic stream, duration 40:");
    let opts =
        ServeOptions { duration: Some(40.0), report_every: 2, seed: 7, ..Default::default() };
    let report = serve(&engine, &policy, "JSQ(2)", &JobSource::Synthetic, &opts, |tick| {
        println!(
            "  t = {:>5.1}  arrived {:>5}  completed {:>5}  dropped {:>3}  \
             mean queue {:.3}",
            tick.sim_time,
            tick.jobs_arrived,
            tick.jobs_completed,
            tick.jobs_dropped,
            tick.mean_queue_len
        );
    })
    .expect("synthetic serve must succeed");
    println!(
        "  summary: {} jobs in {:.1} time units, drop fraction {:.4}, \
         {:.2} Mjobs/s wall throughput",
        report.jobs_arrived,
        report.sim_time,
        report.drop_fraction,
        report.jobs_per_sec / 1e6
    );
}

//! Non-exponential service times: load balancing with phase-type service
//! (the paper's §5 extension, end to end).
//!
//! Fits phase-type laws to a target mean and squared coefficient of
//! variation (SCV), then compares JSQ(2)/RND/softmin at Δt = 5 in
//! (a) the PH mean-field model and (b) a finite system with Gillespie
//! PH queues — showing that service *variability*, not just load,
//! drives drops, and that the softened policy's advantage survives.
//!
//! ```text
//! cargo run --release --example nonexponential_service
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{PhMeanFieldMdp, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule, softmin_rule};
use mflb::queue::PhaseType;
use mflb::sim::{monte_carlo, EngineSpec, Scenario, ServiceLaw};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = SystemConfig::paper().with_dt(5.0).with_m_squared(50);
    let horizon = config.eval_episode_len();
    let zs = config.num_states();

    println!("service laws fitted to mean 1 (two-moment phase-type fits):");
    for &scv in &[0.25, 1.0, 4.0] {
        let ph = PhaseType::fit_mean_scv(1.0, scv);
        println!(
            "  SCV {scv:<5} -> {} phases, fitted mean {:.4}, fitted SCV {:.4}",
            ph.num_phases(),
            ph.mean(),
            ph.scv()
        );
    }

    let policies = [
        FixedRulePolicy::new(jsq_rule(zs, config.d), "JSQ(2)"),
        FixedRulePolicy::new(rnd_rule(zs, config.d), "RND"),
        FixedRulePolicy::new(softmin_rule(zs, config.d, 0.8), "SOFT(0.8)"),
    ];

    for &scv in &[0.25, 1.0, 4.0] {
        let service = PhaseType::fit_mean_scv(1.0, scv);
        println!("\n== SCV = {scv} ({} phases) ==", service.num_phases());

        // (a) PH mean-field model: joint (length, phase) distribution,
        //     exact discretization per epoch.
        let mdp = PhMeanFieldMdp::new(config.clone(), service.clone());
        let mut rng = StdRng::seed_from_u64(1);
        print!("  mean-field drops: ");
        for p in &policies {
            let mut total = 0.0;
            let episodes = 20;
            for _ in 0..episodes {
                total -= mdp.rollout(p, horizon, &mut rng).total_return;
            }
            print!("{} {:.1}  ", name_of(p), total / episodes as f64);
        }
        println!();

        // (b) Finite system: exact multinomial client aggregation +
        //     per-queue Gillespie over (length, phase) states, built from
        //     a data-level scenario and fanned out over threads.
        let engine = Scenario::new(
            config.clone(),
            EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv } },
        )
        .build()
        .expect("valid PH scenario");
        print!("  finite  drops:    ");
        for (i, p) in policies.iter().enumerate() {
            let mc = monte_carlo(&engine, p, horizon, 12, 40 + i as u64, 0);
            print!("{} {:.1}  ", name_of(p), mc.mean());
        }
        println!();
    }

    println!(
        "\nReading: at equal load (ρ = λ/α), higher service variability \
         fills buffers in bursts and drops more packets under every policy; \
         the finite system tracks the PH mean field, so the paper's \
         mean-field machinery carries over to non-exponential service."
    );
}

fn name_of(p: &FixedRulePolicy) -> &str {
    use mflb::core::mdp::UpperPolicy;
    p.name()
}

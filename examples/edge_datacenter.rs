//! Edge-datacenter scenario: heterogeneous servers + day/night load — the
//! extension the paper's §5 names (heterogeneous service rates), on top of
//! the job-level FIFO substrate for response times.
//!
//! A small edge site has a few fast machines and many slow ones; traffic
//! alternates between a day level and a night level. We compare SED(2)
//! (rate-aware), JSQ(2) (rate-blind) and RND under a synchronization
//! delay, reporting both drops and sojourn times.
//!
//! ```text
//! cargo run --release --example edge_datacenter
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{DecisionRule, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule, sed_rule};
use mflb::queue::fifo::FifoQueue;
use mflb::queue::hetero::ServerPool;
use mflb::queue::mmpp::ArrivalProcess;
use mflb::sim::{monte_carlo, run_rng, AnyEngine, EngineSpec, Scenario};
use rand::Rng;

/// Lifts a plain queue-length rule to composite (length, class) states.
fn lift(rule: &DecisionRule, zs: usize, classes: usize, d: usize) -> DecisionRule {
    DecisionRule::from_fn(zs * classes, d, |t| {
        let raw: Vec<usize> = t.iter().map(|&c| c % zs).collect();
        (0..d).map(|u| rule.prob(&raw, u)).collect()
    })
}

fn main() {
    // 8 fast servers (α = 2.0) + 32 slow ones (α = 0.75); day/night load.
    let pool = ServerPool::two_speed(8, 2.0, 32, 0.75, 5);
    let day_night = ArrivalProcess::new(
        vec![0.85, 0.35],                     // day, night rate per queue
        vec![vec![0.9, 0.1], vec![0.3, 0.7]], // slow modulation
        vec![0.5, 0.5],
    );
    let config = SystemConfig::paper().with_dt(4.0).with_size(40 * 40, 40).with_arrivals(day_night);
    // Data-level scenario: the heterogeneous engine is described by its
    // per-server rates and built through the scenario layer.
    let scenario =
        Scenario::new(config.clone(), EngineSpec::Hetero { rates: pool.rates().to_vec() });
    let built = scenario.build().expect("valid edge scenario");
    let engine = match &built {
        AnyEngine::Hetero(e) => e,
        _ => unreachable!("hetero spec builds a hetero engine"),
    };
    let horizon = config.eval_episode_len();
    let zs = config.num_states();

    println!(
        "edge site: {} fast + {} slow servers, N = {} clients, Δt = {}, Te = {horizon}",
        8, 32, config.num_clients, config.dt
    );

    let sed = sed_rule(zs, config.d, engine.class_rates());
    let jsq = lift(&jsq_rule(zs, config.d), zs, engine.num_classes(), config.d);
    let rnd = lift(&rnd_rule(zs, config.d), zs, engine.num_classes(), config.d);

    println!("\ncumulative per-queue drops over the episode (mean of 20 runs, parallel MC):");
    for (name, rule, seed) in [("SED(2)", &sed, 1u64), ("JSQ(2)", &jsq, 2), ("RND", &rnd, 3)] {
        let policy = FixedRulePolicy::new(rule.clone(), name);
        let mc = monte_carlo(&built, &policy, horizon, 20, seed, 0);
        println!("  {name:<8} {:7.2}", mc.mean());
    }

    // Response-time view on the job level: feed the SED vs JSQ arrival
    // splits into FIFO queues and measure sojourn times of completed jobs.
    println!("\njob-level sojourn times (FIFO substrate, single representative epoch stream):");
    for (name, rule, seed) in [("SED(2)", &sed, 11u64), ("JSQ(2)", &jsq, 12)] {
        let mut rng = run_rng(seed, 0);
        let mut queues: Vec<FifoQueue> =
            pool.rates().iter().map(|&a| FifoQueue::new(a, pool.buffer())).collect();
        let mut lengths: Vec<usize> = vec![0; pool.len()];
        let mut all_sojourns = Vec::new();
        let mut drops = 0u64;
        let mut lambda_idx = 0usize;
        for _ in 0..horizon {
            let lambda = config.arrivals.level_rate(lambda_idx);
            // Client assignment counts for this epoch (stale states).
            let mut counts = vec![0u64; pool.len()];
            let mut sampled = vec![0usize; config.d];
            let mut tuple = vec![0usize; config.d];
            for _ in 0..config.num_clients {
                for k in 0..config.d {
                    sampled[k] = rng.gen_range(0..pool.len());
                    tuple[k] = engine.composite_state(sampled[k], lengths[sampled[k]]);
                }
                let u = rule.sample(&tuple, &mut rng);
                counts[sampled[u]] += 1;
            }
            let scale = pool.len() as f64 * lambda / config.num_clients as f64;
            for (j, q) in queues.iter_mut().enumerate() {
                let stats = q.run_epoch(scale * counts[j] as f64, config.dt, &mut rng);
                drops += stats.drops;
                all_sojourns.extend(stats.sojourn_times);
                lengths[j] = q.len();
            }
            lambda_idx = config.arrivals.step(lambda_idx, &mut rng);
        }
        let mean_sojourn = all_sojourns.iter().sum::<f64>() / all_sojourns.len().max(1) as f64;
        let mut sorted = all_sojourns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = sorted[(sorted.len() as f64 * 0.95) as usize];
        println!(
            "  {name:<8} mean sojourn {:6.3}  p95 {:6.3}  completed {:>6}  dropped {:>5}",
            mean_sojourn,
            p95,
            sorted.len(),
            drops
        );
    }

    println!(
        "\nSED(2) uses the rate classes the stale broadcast already carries, so it \
         wins on both drops and tail latency — the paper's suggested extension in action."
    );
}

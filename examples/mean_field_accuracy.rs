//! Theorem 1, numerically: the finite-system performance `J^{N,M}`
//! approaches the mean-field performance `J` as the system grows.
//!
//! Following the proof's setup, we condition on a fixed arrival-level
//! sequence (shared between the limit model and every finite run) and
//! sweep `M` with `N = M²`, printing the absolute gap.
//!
//! ```text
//! cargo run --release --example mean_field_accuracy
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::theory::{conditioned_return, sample_lambda_sequence, ConvergenceRow};
use mflb::core::SystemConfig;
use mflb::policy::jsq_rule;
use mflb::sim::{monte_carlo_conditioned, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let base = SystemConfig::paper().with_dt(5.0);
    let horizon = base.eval_episode_len();
    let policy = FixedRulePolicy::new(jsq_rule(base.num_states(), base.d), "JSQ(2)");

    // One fixed arrival path, as in the Theorem-1 conditioning.
    let mut rng = StdRng::seed_from_u64(2024);
    let lambda_seq = sample_lambda_sequence(&base, horizon, &mut rng);

    // Mean-field value: fully deterministic given the arrival path.
    let mf_return = conditioned_return(&base, &policy, &lambda_seq);
    println!(
        "mean-field episode drops (Δt = {}, Te = {horizon}, fixed λ path): {:.3}",
        base.dt, -mf_return
    );

    println!("\n{:>6} {:>10} {:>12} {:>9} {:>9}  consistent?", "M", "N", "finite", "ci95", "|gap|");
    let mut rows = Vec::new();
    for &m in &[25usize, 50, 100, 200, 400] {
        let cfg = base.clone().with_m_squared(m);
        let engine = AggregateEngine::new(cfg.clone());
        let mc = monte_carlo_conditioned(&engine, &policy, &lambda_seq, 30, 7, 0);
        let row = ConvergenceRow {
            num_clients: cfg.num_clients,
            num_queues: m,
            mean_field: mf_return,
            finite_mean: -mc.mean(),
            finite_ci95: mc.ci95(),
        };
        println!(
            "{:>6} {:>10} {:>12.3} {:>9.3} {:>9.3}  {}",
            m,
            cfg.num_clients,
            mc.mean(),
            mc.ci95(),
            row.gap(),
            if row.consistent_within(0.5) { "yes" } else { "not yet" }
        );
        rows.push(row);
    }

    let first = rows.first().unwrap().gap();
    let last = rows.last().unwrap().gap();
    println!(
        "\ngap shrank from {:.3} (M = 25) to {:.3} (M = 400): the mean-field \
         model is an accurate description of large systems — Theorem 1 in numbers.",
        first, last
    );
}

//! The motivating phenomenon: *herd behaviour* of JSQ under delayed
//! information (Mitzenmacher 2000, paper §1).
//!
//! When queue states are only broadcast every Δt time units, every client
//! sees the same stale snapshot. Under JSQ they all pile onto the
//! momentarily-shortest queues, which are full long before the next
//! update. This example measures, per epoch, how concentrated the client
//! assignments are (max share of clients on one queue) and what it costs
//! (drops), for growing Δt.
//!
//! ```text
//! cargo run --release --example herd_behaviour
//! ```

use mflb::core::{DecisionRule, StateDist, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule};
use mflb::queue::BirthDeathQueue;
use mflb::sim::{run_rng, sample_initial_queues, FiniteEngine, PerClientEngine};

fn episode_with_concentration(
    engine: &PerClientEngine,
    rule: &DecisionRule,
    horizon: usize,
    seed: u64,
) -> (f64, f64) {
    let config = engine.config();
    let mut rng = run_rng(seed, 0);
    let mut queues = sample_initial_queues(config, &mut rng);
    let mut lambda_idx = config.arrivals.sample_initial(&mut rng);
    let mut total_drops = 0.0;
    let mut max_share_sum = 0.0;
    for _ in 0..horizon {
        let lambda = config.arrivals.level_rate(lambda_idx);
        // Assignments of every client this epoch (the herding signal).
        let counts = engine.sample_assignments(&queues, rule, &mut rng);
        let max_count = *counts.iter().max().unwrap() as f64;
        max_share_sum += max_count / config.num_clients as f64;
        // Simulate the queues with those frozen assignment rates.
        let scale = config.num_queues as f64 * lambda / config.num_clients as f64;
        let mut drops = 0u64;
        for (j, q) in queues.iter_mut().enumerate() {
            let model =
                BirthDeathQueue::new(scale * counts[j] as f64, config.service_rate, config.buffer);
            let out = model.simulate_epoch(*q, config.dt, &mut rng);
            *q = out.final_state;
            drops += out.drops;
        }
        total_drops += drops as f64 / config.num_queues as f64;
        lambda_idx = config.arrivals.step(lambda_idx, &mut rng);
    }
    (total_drops, max_share_sum / horizon as f64)
}

fn main() {
    let m = 50usize;
    let n = 2_500u64;
    println!("herd behaviour demo: N = {n}, M = {m}, d = 2");
    println!(
        "(max-share = average fraction of ALL clients assigned to the single most-popular queue;"
    );
    println!(" uniform share would be 1/M = {:.3})\n", 1.0 / m as f64);
    println!(
        "{:>5}  {:>14}  {:>14}  {:>14}  {:>14}",
        "Δt", "JSQ drops", "JSQ max-share", "RND drops", "RND max-share"
    );
    for &dt in &[0.5, 1.0, 2.0, 4.0, 8.0] {
        let config = SystemConfig::paper().with_dt(dt).with_size(n, m);
        let horizon = config.eval_episode_len();
        let engine = PerClientEngine::new(config.clone());
        let jsq = jsq_rule(config.num_states(), config.d);
        let rnd = rnd_rule(config.num_states(), config.d);
        let (jsq_drops, jsq_share) = episode_with_concentration(&engine, &jsq, horizon, 1);
        let (rnd_drops, rnd_share) = episode_with_concentration(&engine, &rnd, horizon, 2);
        println!(
            "{dt:>5}  {jsq_drops:>14.2}  {jsq_share:>14.3}  {rnd_drops:>14.2}  {rnd_share:>14.3}"
        );
    }

    // Show one frozen snapshot of herding explicitly.
    let config = SystemConfig::paper().with_dt(8.0).with_size(n, m);
    let engine = PerClientEngine::new(config.clone());
    let mut rng = run_rng(3, 0);
    // A state where one queue looks empty and the rest are half-full.
    let mut queues = vec![3usize; m];
    queues[0] = 0;
    let jsq = jsq_rule(config.num_states(), config.d);
    let counts = engine.sample_assignments(&queues, &jsq, &mut rng);
    let share0 = counts[0] as f64 / n as f64;
    let h = StateDist::empirical(&queues, config.buffer);
    println!("\nsnapshot: one empty queue among {} half-full ones (H = {:?})", m - 1, h.as_slice());
    println!(
        "JSQ sends {:.1}% of ALL clients to that single queue (uniform would be {:.1}%) — the herd.",
        100.0 * share0,
        100.0 / m as f64
    );
}

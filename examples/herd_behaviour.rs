//! The motivating phenomenon: *herd behaviour* of JSQ under delayed
//! information (Mitzenmacher 2000, paper §1).
//!
//! When queue states are only broadcast every Δt time units, every client
//! sees the same stale snapshot. Under JSQ they all pile onto the
//! momentarily-shortest queues, which are full long before the next
//! update. This example measures, per epoch, how concentrated the client
//! assignments are (max share of clients on one queue — the
//! `max_share_per_epoch` diagnostic every engine now reports through the
//! unified `EpisodeOutcome`) and what it costs (drops), for growing Δt.
//!
//! ```text
//! cargo run --release --example herd_behaviour
//! ```

use mflb::core::mdp::FixedRulePolicy;
use mflb::core::{StateDist, SystemConfig};
use mflb::policy::{jsq_rule, rnd_rule};
use mflb::sim::{run_episode, run_rng, EngineSpec, PerClientEngine, Scenario};

fn main() {
    let m = 50usize;
    let n = 2_500u64;
    println!("herd behaviour demo: N = {n}, M = {m}, d = 2");
    println!(
        "(max-share = average fraction of ALL clients assigned to the single most-popular queue;"
    );
    println!(" uniform share would be 1/M = {:.3})\n", 1.0 / m as f64);
    println!(
        "{:>5}  {:>14}  {:>14}  {:>14}  {:>14}",
        "Δt", "JSQ drops", "JSQ max-share", "RND drops", "RND max-share"
    );
    for &dt in &[0.5, 1.0, 2.0, 4.0, 8.0] {
        let config = SystemConfig::paper().with_dt(dt).with_size(n, m);
        let horizon = config.eval_episode_len();
        // The literal per-client engine, constructed from a data-level
        // scenario spec and driven through the generic episode loop.
        let engine =
            Scenario::new(config.clone(), EngineSpec::PerClient).build().expect("valid scenario");
        let jsq = FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ(2)");
        let rnd = FixedRulePolicy::new(rnd_rule(config.num_states(), config.d), "RND");
        let out_jsq = run_episode(&engine, &jsq, horizon, &mut run_rng(1, 0));
        let out_rnd = run_episode(&engine, &rnd, horizon, &mut run_rng(2, 0));
        let mean_share = |shares: &[f64]| shares.iter().sum::<f64>() / shares.len().max(1) as f64;
        println!(
            "{dt:>5}  {:>14.2}  {:>14.3}  {:>14.2}  {:>14.3}",
            out_jsq.total_drops,
            mean_share(&out_jsq.max_share_per_epoch),
            out_rnd.total_drops,
            mean_share(&out_rnd.max_share_per_epoch),
        );
    }

    // Show one frozen snapshot of herding explicitly.
    let config = SystemConfig::paper().with_dt(8.0).with_size(n, m);
    let engine = PerClientEngine::new(config.clone());
    let mut rng = run_rng(3, 0);
    // A state where one queue looks empty and the rest are half-full.
    let mut queues = vec![3usize; m];
    queues[0] = 0;
    let jsq = jsq_rule(config.num_states(), config.d);
    let counts = engine.sample_assignments(&queues, &jsq, &mut rng);
    let share0 = counts[0] as f64 / n as f64;
    let h = StateDist::empirical(&queues, config.buffer);
    println!("\nsnapshot: one empty queue among {} half-full ones (H = {:?})", m - 1, h.as_slice());
    println!(
        "JSQ sends {:.1}% of ALL clients to that single queue (uniform would be {:.1}%) — the herd.",
        100.0 * share0,
        100.0 / m as f64
    );
}
